"""Run-log summarization for the ``repro-trace`` CLI.

Distills a JSONL run log into the numbers someone diagnosing a search
actually asks: how many iterations improved, which stage-count workers
retried or timed out, what faults fired, and what the estimator
counters ended at — per process, so forwarded worker streams stay
attributable.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from collections import defaultdict
from typing import Dict, List, Sequence

from .bus import COUNTER, SPAN_END, Event
from .events import (
    DRIVER_COUNT_FAILED,
    DRIVER_WORKER_ISSUES,
    DRIVER_WORKER_PREFIX,
    FAULTS_PREFIX,
    SEARCH_ITERATION,
)


def summarize_events(events: Sequence[Event]) -> dict:
    """Aggregate a run-log event stream into a JSON-able summary."""
    names = TallyCounter(e.name for e in events)
    sources = TallyCounter(e.source for e in events if e.source)
    pids = sorted({e.pid for e in events})

    iterations = [e for e in events if e.name == SEARCH_ITERATION]
    improved = [e for e in iterations if e.attrs.get("improved")]
    best = None
    for event in iterations:
        value = event.attrs.get("best_objective")
        if value is not None and (best is None or value < best):
            best = value

    lifecycle = TallyCounter(
        e.name for e in events if e.name.startswith(DRIVER_WORKER_PREFIX)
    )
    worker_issues = [
        {
            "event": e.name.rsplit(".", 1)[-1],
            "num_stages": e.attrs.get("num_stages"),
            "attempt": e.attrs.get("attempt"),
            "error": e.attrs.get("error"),
            "pid": e.pid,
        }
        for e in events
        if e.name in DRIVER_WORKER_ISSUES
    ]
    failures = [
        {
            "num_stages": e.attrs.get("num_stages"),
            "attempts": e.attrs.get("attempts"),
            "error": e.attrs.get("error"),
        }
        for e in events
        if e.name == DRIVER_COUNT_FAILED
    ]

    faults = TallyCounter(
        e.name for e in events if e.name.startswith(FAULTS_PREFIX)
    )

    counters: Dict[str, Dict[str, int]] = {}
    for event in events:
        if event.kind == COUNTER:
            # Last snapshot per (pid, counter-group) wins.
            counters[f"{event.name}[pid {event.pid}]"] = {
                k: v for k, v in event.attrs.items()
                if isinstance(v, (int, float))
            }

    spans = defaultdict(list)
    for event in events:
        if event.kind == SPAN_END and "duration" in event.attrs:
            spans[event.name].append(float(event.attrs["duration"]))
    span_stats = {
        name: {
            "count": len(durations),
            "total_seconds": sum(durations),
            "max_seconds": max(durations),
        }
        for name, durations in spans.items()
    }

    return {
        "num_events": len(events),
        "processes": pids,
        "events_by_name": dict(sorted(names.items())),
        "events_by_source": dict(sorted(sources.items())),
        "search": {
            "iterations": len(iterations),
            "improved": len(improved),
            "best_objective": best,
        },
        "driver": {
            "lifecycle": dict(sorted(lifecycle.items())),
            "issues": worker_issues,
            "failed_counts": failures,
        },
        "faults": dict(sorted(faults.items())),
        "counters": counters,
        "spans": span_stats,
    }


def render_summary(summary: dict) -> List[str]:
    """Human-readable lines for a :func:`summarize_events` summary."""
    lines = [
        f"{summary['num_events']} events from "
        f"{len(summary['processes'])} process(es)",
    ]
    search = summary["search"]
    if search["iterations"]:
        best = search["best_objective"]
        best_text = f"{best:.6f}" if best is not None else "-"
        lines.append(
            f"search: {search['iterations']} iterations, "
            f"{search['improved']} improved, best objective {best_text}"
        )
    driver = summary["driver"]
    if driver["lifecycle"]:
        pairs = ", ".join(
            f"{name.rsplit('.', 1)[-1]}={count}"
            for name, count in driver["lifecycle"].items()
        )
        lines.append(f"driver: {pairs}")
    for issue in driver["issues"]:
        lines.append(
            f"  worker[{issue['num_stages']}-stage] {issue['event']} "
            f"(attempt {issue['attempt']}, pid {issue['pid']})"
            + (f": {issue['error']}" if issue.get("error") else "")
        )
    for failure in driver["failed_counts"]:
        lines.append(
            f"  FAILED {failure['num_stages']}-stage after "
            f"{failure['attempts']} attempt(s): {failure['error']}"
        )
    if summary["faults"]:
        pairs = ", ".join(
            f"{name.split('.', 1)[1]}={count}"
            for name, count in summary["faults"].items()
        )
        lines.append(f"faults: {pairs}")
    for name, values in summary["counters"].items():
        pairs = ", ".join(f"{k}={v}" for k, v in values.items())
        lines.append(f"counters {name}: {pairs}")
    if summary["spans"]:
        lines.append("spans:")
        for name, stats in sorted(summary["spans"].items()):
            lines.append(
                f"  {name}: {stats['count']}x, "
                f"total {stats['total_seconds']:.3f}s, "
                f"max {stats['max_seconds']:.3f}s"
            )
    lines.append("events by name:")
    for name, count in summary["events_by_name"].items():
        lines.append(f"  {name:<28} {count}")
    return lines
