"""Chrome trace-event export of simulated pipeline timelines.

Converts the runtime's per-device task spans (one ``runtime.task``
event per forward/backward task of the 1F1B schedule) into the Trace
Event Format that ``chrome://tracing`` and Perfetto load: each pipeline
is a process, each stage a thread, each task a complete (``"X"``)
event with microsecond timestamps.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from .bus import Event
from .events import RUNTIME_TASK

#: Seconds (simulator clock) -> microseconds (trace-event clock).
_US = 1e6


def _task_event(
    *,
    stage: int,
    microbatch: int,
    direction: str,
    start: float,
    end: float,
    pid: int,
) -> dict:
    letter = "F" if direction == "fwd" else "B"
    return {
        "name": f"{letter}{microbatch}",
        "cat": "forward" if direction == "fwd" else "backward",
        "ph": "X",
        "ts": start * _US,
        "dur": max(0.0, end - start) * _US,
        "pid": pid,
        "tid": stage,
        "args": {"microbatch": microbatch, "direction": direction},
    }


def _metadata(pid: int, tids: Sequence[int], process_name: str) -> List[dict]:
    meta = [{
        "name": "process_name",
        "ph": "M",
        "ts": 0,
        "pid": pid,
        "tid": 0,
        "args": {"name": process_name},
    }]
    for tid in sorted(tids):
        meta.append({
            "name": "thread_name",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": tid,
            "args": {"name": f"stage {tid}"},
        })
    return meta


def chrome_trace_from_tasks(
    tasks: Iterable, *, pid: int = 1, process_name: str = "pipeline"
) -> dict:
    """Trace document from simulator task records.

    ``tasks`` is an iterable of ``TaskRecord`` (or any object with
    ``stage``/``microbatch``/``direction``/``start``/``end``), e.g.
    :attr:`repro.runtime.simulator.SimulationResult.tasks`.
    """
    spans = [
        _task_event(
            stage=int(t.stage),
            microbatch=int(t.microbatch),
            direction=t.direction,
            start=float(t.start),
            end=float(t.end),
            pid=pid,
        )
        for t in tasks
    ]
    tids = {span["tid"] for span in spans}
    spans.sort(key=lambda s: (s["tid"], s["ts"]))
    return {
        "traceEvents": _metadata(pid, tids, process_name) + spans,
        "displayTimeUnit": "ms",
    }


def chrome_trace_from_events(events: Iterable[Event]) -> dict:
    """Trace document from ``runtime.task`` telemetry events.

    Events from different processes (e.g. forwarded stage-count
    workers) become separate trace processes keyed by their pid.
    """
    by_pid: Dict[int, List[dict]] = defaultdict(list)
    for event in events:
        if event.name != RUNTIME_TASK:
            continue
        attrs = event.attrs
        by_pid[event.pid].append(_task_event(
            stage=int(attrs["stage"]),
            microbatch=int(attrs["microbatch"]),
            direction=attrs["direction"],
            start=float(attrs["start"]),
            end=float(attrs["end"]),
            pid=event.pid,
        ))
    trace_events: List[dict] = []
    for pid in sorted(by_pid):
        spans = by_pid[pid]
        spans.sort(key=lambda s: (s["tid"], s["ts"]))
        tids = {span["tid"] for span in spans}
        trace_events.extend(_metadata(pid, tids, f"pipeline (pid {pid})"))
        trace_events.extend(spans)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: dict, path: Union[str, Path]) -> None:
    """Write a trace document (already validated) to ``path``."""
    validate_chrome_trace(trace)
    Path(path).write_text(json.dumps(trace, indent=1))


def validate_chrome_trace(trace) -> None:
    """Assert ``trace`` is well-formed trace-event JSON.

    Checks strict JSON-serializability, the required ``ph``/``ts``/
    ``pid``/``tid`` keys on every event, non-negative durations, and
    monotone start timestamps within each ``(pid, tid)`` track.
    Raises ``ValueError`` on the first violation.
    """
    try:
        json.loads(json.dumps(trace, allow_nan=False))
    except (TypeError, ValueError) as exc:
        raise ValueError(f"trace is not strict JSON: {exc}")
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be an object with 'traceEvents'")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    last_ts: Dict[tuple, float] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}]: not an object")
        for key in ("ph", "ts", "pid", "tid"):
            if key not in event:
                raise ValueError(f"traceEvents[{i}]: missing {key!r}")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            raise ValueError(
                f"traceEvents[{i}]: ts must be a non-negative number"
            )
        if event["ph"] == "X":
            if "dur" not in event or event["dur"] < 0:
                raise ValueError(
                    f"traceEvents[{i}]: X event needs non-negative dur"
                )
            track = (event["pid"], event["tid"])
            if event["ts"] < last_ts.get(track, 0.0):
                raise ValueError(
                    f"traceEvents[{i}]: timestamps regress on track "
                    f"{track}"
                )
            last_ts[track] = event["ts"]
