"""One event bus for search, perf model, runtime, faults, and CLI.

Aceso's interesting behaviour *is* its search dynamics — which
bottleneck was picked, which primitive fired, how many estimates an
improvement cost, which worker retried.  This package makes those
first-class: every subsystem emits typed :class:`Event` records onto a
process-local :class:`TelemetryBus`, and pluggable sinks turn the
stream into artifacts (an in-memory ring buffer, a JSONL run log, a
console narration, a Chrome ``chrome://tracing`` timeline).

With no sinks attached the bus is inactive and emission short-circuits
after one check, so telemetry-off code paths stay at full speed
(guarded by ``benchmarks/bench_perfmodel_micro.py``).
"""

from .bus import (
    COUNTER,
    DEBUG,
    ERROR,
    EVENT,
    INFO,
    LEVELS_BY_NAME,
    LEVEL_NAMES,
    SPAN_BEGIN,
    SPAN_END,
    WARNING,
    Counter,
    CounterGroup,
    Event,
    Span,
    TelemetryBus,
    get_bus,
    set_bus,
    using_bus,
)
from .chrome import (
    chrome_trace_from_events,
    chrome_trace_from_tasks,
    validate_chrome_trace,
    write_chrome_trace,
)
from .sinks import (
    CallbackSink,
    ConsoleSink,
    JsonlSink,
    RingBufferSink,
    events_to_jsonl,
    read_run_log,
    validate_run_log,
)
from .summary import render_summary, summarize_events

__all__ = [
    "COUNTER",
    "CallbackSink",
    "ConsoleSink",
    "Counter",
    "CounterGroup",
    "DEBUG",
    "ERROR",
    "EVENT",
    "Event",
    "INFO",
    "JsonlSink",
    "LEVELS_BY_NAME",
    "LEVEL_NAMES",
    "RingBufferSink",
    "SPAN_BEGIN",
    "SPAN_END",
    "Span",
    "TelemetryBus",
    "WARNING",
    "chrome_trace_from_events",
    "chrome_trace_from_tasks",
    "events_to_jsonl",
    "get_bus",
    "read_run_log",
    "render_summary",
    "set_bus",
    "summarize_events",
    "using_bus",
    "validate_chrome_trace",
    "validate_run_log",
    "write_chrome_trace",
]
