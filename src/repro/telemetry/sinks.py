"""Telemetry sinks: ring buffer, JSONL run log, console, callbacks.

A sink is anything with ``handle(event)``; ``close()`` is optional and
called by :meth:`TelemetryBus.close`.  The JSONL format is the on-disk
run log consumed by ``repro-trace`` and the CI smoke job: one event per
line, schema-checked by :func:`validate_run_log`.
"""

from __future__ import annotations

import json
import sys
import threading
from collections import deque
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Sequence, Union

from .bus import LEVEL_NAMES, Event

#: Keys every run-log line must carry (the JSONL schema).
RUN_LOG_KEYS = ("name", "kind", "ts", "pid", "source", "level", "attrs")


class RingBufferSink:
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._events: deque = deque(maxlen=capacity)

    def handle(self, event: Event) -> None:
        self._events.append(event)

    @property
    def events(self) -> List[Event]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()


class JsonlSink:
    """Append every event to a JSONL run log.

    Lines are flushed on ``close`` (or per event with ``flush_every=1``)
    so a crashed run still leaves a usable prefix on disk.  Writes are
    serialized under a lock: the planner daemon emits from many threads
    at once, and ``TextIOWrapper`` corrupts its buffer under concurrent
    writers.
    """

    def __init__(
        self, path: Union[str, Path], *, flush_every: int = 64
    ) -> None:
        self.path = Path(path)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._flush_every = max(1, flush_every)
        self._pending = 0
        self._lock = threading.Lock()

    def handle(self, event: Event) -> None:
        line = json.dumps(event.to_json()) + "\n"
        with self._lock:
            self._handle.write(line)
            self._pending += 1
            if self._pending >= self._flush_every:
                self._handle.flush()
                self._pending = 0

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()


class ConsoleSink:
    """Render events at or above ``min_level`` as log lines."""

    def __init__(self, stream=None, *, min_level: int = 30) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_level = min_level

    def handle(self, event: Event) -> None:
        if event.level < self.min_level:
            return
        level = LEVEL_NAMES.get(event.level, str(event.level))
        attrs = " ".join(
            f"{key}={value}"
            for key, value in event.attrs.items()
            if not key.startswith("_")
        )
        prefix = f"[{event.ts:9.3f}s {level:<7}] {event.name}"
        print(f"{prefix} {attrs}".rstrip(), file=self.stream)


class CallbackSink:
    """Invoke ``fn(event)`` for events whose name is in ``names``.

    ``names=None`` subscribes to everything.  This is how in-process
    consumers (e.g. checkpoint recording in the stage-count driver)
    ride the bus instead of bespoke callback plumbing.
    """

    def __init__(
        self,
        fn: Callable[[Event], None],
        names: Optional[Sequence[str]] = None,
    ) -> None:
        self._fn = fn
        self._names = frozenset(names) if names is not None else None

    def handle(self, event: Event) -> None:
        if self._names is None or event.name in self._names:
            self._fn(event)


# ---------------------------------------------------------------------
# run-log reading / validation
# ---------------------------------------------------------------------
def read_run_log(path: Union[str, Path]) -> List[Event]:
    """Parse a JSONL run log back into :class:`Event` objects."""
    events = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(Event.from_json(json.loads(line)))
    return events


def validate_run_log(path: Union[str, Path]) -> List[Event]:
    """Strictly validate a JSONL run log; returns the parsed events.

    Every line must be a standalone JSON object carrying the full
    schema (:data:`RUN_LOG_KEYS`) with JSON-serializable attrs and a
    non-negative timestamp.  Raises ``ValueError`` with the offending
    line number on the first violation.
    """
    events: List[Event] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                raise ValueError(f"line {lineno}: blank line in run log")
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"line {lineno}: invalid JSON: {exc}")
            if not isinstance(data, dict):
                raise ValueError(f"line {lineno}: event must be an object")
            missing = [key for key in RUN_LOG_KEYS if key not in data]
            if missing:
                raise ValueError(
                    f"line {lineno}: missing keys {missing}"
                )
            if not isinstance(data["name"], str) or not data["name"]:
                raise ValueError(f"line {lineno}: name must be a string")
            if not isinstance(data["ts"], (int, float)) or data["ts"] < 0:
                raise ValueError(
                    f"line {lineno}: ts must be a non-negative number"
                )
            if not isinstance(data["pid"], int):
                raise ValueError(f"line {lineno}: pid must be an int")
            if not isinstance(data["attrs"], dict):
                raise ValueError(f"line {lineno}: attrs must be an object")
            events.append(Event.from_json(data))
    return events


def events_to_jsonl(events: Iterable[Event]) -> str:
    """Serialize events to run-log text (one JSON object per line)."""
    return "".join(json.dumps(e.to_json()) + "\n" for e in events)
