"""Process-local telemetry bus: typed events, spans, and counters.

One bus per process fans events out to pluggable sinks (ring buffer,
JSONL run log, console).  The design constraint is the estimator hot
path: with no sinks attached the bus is *inactive* and every ``emit``
returns after one attribute check, so disabled telemetry costs nothing
measurable (``benchmarks/bench_perfmodel_micro.py`` guards this).

Producers never hold a bus reference across process boundaries; they
call :func:`get_bus` at emit time, and pool workers install their own
bus per task (see ``repro.core.pool._pool_worker_main``) whose captured
events are forwarded to the parent with worker attribution.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

#: Event severity levels (logging-module numeric scale).
DEBUG, INFO, WARNING, ERROR = 10, 20, 30, 40

LEVEL_NAMES = {DEBUG: "debug", INFO: "info", WARNING: "warning",
               ERROR: "error"}
LEVELS_BY_NAME = {name: value for value, name in LEVEL_NAMES.items()}

#: Event kinds.
EVENT, SPAN_BEGIN, SPAN_END, COUNTER = (
    "event", "span_begin", "span_end", "counter"
)


@dataclass(frozen=True)
class Event:
    """One telemetry record.

    ``ts`` is seconds since the emitting bus's epoch (monotonic within
    one process).  ``attrs`` keys starting with ``_`` carry in-memory
    payload objects for same-process subscribers and are dropped by
    serializing sinks.
    """

    name: str
    kind: str = EVENT
    ts: float = 0.0
    pid: int = 0
    source: str = ""
    level: int = INFO
    attrs: Mapping = field(default_factory=dict)

    def to_json(self) -> dict:
        """JSON-safe representation (private ``_`` attrs dropped)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "ts": self.ts,
            "pid": self.pid,
            "source": self.source,
            "level": self.level,
            "attrs": {
                key: _json_safe(value)
                for key, value in self.attrs.items()
                if not key.startswith("_")
            },
        }

    @classmethod
    def from_json(cls, data: dict) -> "Event":
        return cls(
            name=data["name"],
            kind=data.get("kind", EVENT),
            ts=float(data.get("ts", 0.0)),
            pid=int(data.get("pid", 0)),
            source=data.get("source", ""),
            level=int(data.get("level", INFO)),
            attrs=dict(data.get("attrs", {})),
        )

    def with_attrs(self, **extra) -> "Event":
        """Copy with ``extra`` merged into ``attrs`` (attribution)."""
        merged = dict(self.attrs)
        merged.update(extra)
        return Event(
            name=self.name,
            kind=self.kind,
            ts=self.ts,
            pid=self.pid,
            source=self.source,
            level=self.level,
            attrs=merged,
        )


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


class Span:
    """Live span handle: set attributes before the span closes."""

    __slots__ = ("name", "attrs", "_begin")

    def __init__(self, name: str, attrs: dict, begin: float) -> None:
        self.name = name
        self.attrs = attrs
        self._begin = begin

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)


class _NullSpan:
    """Shared no-op span for the inactive-bus fast path."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class TelemetryBus:
    """Process-local event bus with pluggable sinks.

    The bus is *active* exactly when at least one sink is attached;
    every producer guards on that, so a sinkless bus adds only the cost
    of the check.
    """

    def __init__(self) -> None:
        self._sinks: List = []
        self.epoch = time.perf_counter()
        self.pid = os.getpid()

    # -- sink management ----------------------------------------------
    @property
    def active(self) -> bool:
        return bool(self._sinks)

    def add_sink(self, sink):
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink) -> None:
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    @contextmanager
    def sink(self, sink) -> Iterator:
        """Attach ``sink`` for the duration of a ``with`` block."""
        self.add_sink(sink)
        try:
            yield sink
        finally:
            self.remove_sink(sink)

    # -- emission ------------------------------------------------------
    def clock(self) -> float:
        return time.perf_counter() - self.epoch

    def emit(
        self,
        name: str,
        *,
        kind: str = EVENT,
        source: str = "",
        level: int = INFO,
        **attrs,
    ) -> Optional[Event]:
        """Build and dispatch an event; no-op on an inactive bus."""
        if not self._sinks:
            return None
        event = Event(
            name=name,
            kind=kind,
            ts=self.clock(),
            pid=self.pid,
            source=source,
            level=level,
            attrs=attrs,
        )
        self.emit_event(event)
        return event

    def emit_event(self, event: Event) -> None:
        """Dispatch a pre-built event (e.g. forwarded from a worker)."""
        for sink in self._sinks:
            sink.handle(event)

    @contextmanager
    def span(
        self, name: str, *, source: str = "", level: int = INFO, **attrs
    ) -> Iterator:
        """Emit ``span_begin``/``span_end`` around a block.

        The yielded handle's :meth:`Span.set` attributes land on the
        closing event, which also carries the measured ``duration``.
        """
        if not self._sinks:
            yield _NULL_SPAN
            return
        begin = self.clock()
        self.emit_event(Event(
            name=name, kind=SPAN_BEGIN, ts=begin, pid=self.pid,
            source=source, level=level, attrs=dict(attrs),
        ))
        handle = Span(name, dict(attrs), begin)
        try:
            yield handle
        finally:
            end = self.clock()
            handle.attrs["duration"] = end - begin
            self.emit_event(Event(
                name=name, kind=SPAN_END, ts=end, pid=self.pid,
                source=source, level=level, attrs=handle.attrs,
            ))

    def close(self) -> None:
        """Close every sink that supports closing and detach all."""
        for sink in self._sinks:
            closer = getattr(sink, "close", None)
            if closer is not None:
                closer()
        self._sinks.clear()


class Counter:
    """A named monotonically-increasing integer.

    Deliberately minimal — ``inc`` is called on estimator hot paths, so
    it is one slot-attribute add, nothing else.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class CounterGroup:
    """A set of related counters that snapshots into one event."""

    def __init__(self, source: str, names: Tuple[str, ...]) -> None:
        self.source = source
        self._counters: Dict[str, Counter] = {
            name: Counter(name) for name in names
        }

    def __getitem__(self, name: str) -> Counter:
        return self._counters[name]

    def inc(self, name: str, n: int = 1) -> None:
        self._counters[name].value += n

    def snapshot(self) -> Dict[str, int]:
        return {name: c.value for name, c in self._counters.items()}

    def emit_to(self, bus: "TelemetryBus", name: Optional[str] = None) -> None:
        """Emit one ``counter`` event with the current values.

        The default name is ``<source>.counters``; groups used outside
        tests must register theirs in :mod:`repro.telemetry.events`.
        """
        bus.emit(
            name or f"{self.source}.counters",  # lint: allow(ACE902)
            kind=COUNTER,
            source=self.source,
            level=DEBUG,
            **self.snapshot(),
        )


# ---------------------------------------------------------------------
# process-global default bus
# ---------------------------------------------------------------------
_GLOBAL_BUS = TelemetryBus()


def get_bus() -> TelemetryBus:
    """The process-global bus (inactive until a sink is attached)."""
    return _GLOBAL_BUS


def set_bus(bus: TelemetryBus) -> TelemetryBus:
    """Replace the global bus; returns the previous one."""
    global _GLOBAL_BUS
    previous = _GLOBAL_BUS
    # Swapping the bus is a single reference assignment, done from the
    # main thread during setup/teardown (using_bus in tests, CLI boot)
    # before worker threads exist; a lock here would buy nothing.
    _GLOBAL_BUS = bus  # lint: allow(ACE936)
    return previous


@contextmanager
def using_bus(bus: TelemetryBus) -> Iterator[TelemetryBus]:
    """Install ``bus`` as the global bus for a ``with`` block."""
    previous = set_bus(bus)
    try:
        yield bus
    finally:
        set_bus(previous)
