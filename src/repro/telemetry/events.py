"""Central registry of every telemetry event name.

Event names used to live as string literals scattered across eight
modules; a typo'd name silently produced an event nobody aggregated.
This module is now the single vocabulary: every emit site imports its
constant from here, :mod:`repro.telemetry.summary` groups by the
prefixes declared here, and the ``repro-lint`` Tier-B checker
(``ACE902``/``ACE903``) rejects any emit whose name is not a literal
drawn from this registry.

Adding an event is a one-line change here plus the emit site; the
registry is the contract that run-log consumers (``repro-trace``,
artifact linting, dashboards) can rely on.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

# -- search (Algorithm 1 iterations) ----------------------------------
SEARCH_BEGIN = "search.begin"
SEARCH_ITERATION = "search.iteration"
SEARCH_DEADLINE = "search.deadline"
SEARCH_END = "search.end"

# -- search strategies (per-strategy detail streams) ------------------
SEARCH_STRATEGY_PROPOSAL = "search.strategy.proposal"
SEARCH_STRATEGY_ARM = "search.strategy.arm"
SEARCH_STRATEGY_STATS = "search.strategy.stats"

# -- strategy arena (tournament harness) ------------------------------
ARENA_BEGIN = "arena.begin"
ARENA_ENTRY_BEGIN = "arena.entry.begin"
ARENA_ENTRY_END = "arena.entry.end"
ARENA_ENTRY_FAILED = "arena.entry.failed"
ARENA_END = "arena.end"

# -- performance model ------------------------------------------------
PERFMODEL_ESTIMATE = "perfmodel.estimate"
PERFMODEL_ESTIMATE_BATCH = "perfmodel.estimate_batch"
PERFMODEL_FIRST_FEASIBLE = "perfmodel.first_feasible"
PERFMODEL_COUNTERS = "perfmodel.counters"

# -- stage-count driver ----------------------------------------------
DRIVER_BEGIN = "driver.begin"
DRIVER_END = "driver.end"
DRIVER_COUNT_COMPLETED = "driver.count.completed"
DRIVER_COUNT_FAILED = "driver.count.failed"
DRIVER_COUNT_RESTORED = "driver.count.restored"
DRIVER_WORKER_SPAWN = "driver.worker.spawn"
DRIVER_WORKER_RETRY = "driver.worker.retry"
DRIVER_WORKER_TIMEOUT = "driver.worker.timeout"
DRIVER_WORKER_CRASH = "driver.worker.crash"
DRIVER_WORKER_ERROR = "driver.worker.error"
DRIVER_POOL_WORKER_START = "driver.pool.worker_start"
DRIVER_POOL_WORKER_EXIT = "driver.pool.worker_exit"

# -- runtime executor -------------------------------------------------
RUNTIME_RUN = "runtime.run"
RUNTIME_TASK = "runtime.task"

# -- fault injection --------------------------------------------------
FAULTS_DEVICE_FAILURE = "faults.device_failure"
FAULTS_STRAGGLER = "faults.straggler"
FAULTS_LINK_DEGRADATION = "faults.link_degradation"
FAULTS_TRANSIENT_OOM = "faults.transient_oom"
FAULTS_CLUSTER_SHRUNK = "faults.cluster_shrunk"

# -- checkpointing ----------------------------------------------------
CHECKPOINT_CORRUPT = "checkpoint.corrupt"

# -- elastic controller ----------------------------------------------
ELASTIC_RUN_BEGIN = "elastic.run.begin"
ELASTIC_RUN_END = "elastic.run.end"
ELASTIC_EVENT = "elastic.event"
ELASTIC_DECISION = "elastic.decision"
ELASTIC_REPLAN_BEGIN = "elastic.replan.begin"
ELASTIC_REPLAN_END = "elastic.replan.end"
ELASTIC_FALLBACK = "elastic.fallback"
ELASTIC_CLUSTER_SHRUNK = "elastic.cluster.shrunk"
ELASTIC_CACHE_INVALIDATE = "elastic.cache.invalidate"

# -- request coalescing (in-daemon fingerprint sharing) ---------------
COALESCE_ATTACH = "coalesce.attach"
COALESCE_FANOUT = "coalesce.fanout"

# -- planner fleet (router, replicas, chaos harness) ------------------
FLEET_START = "fleet.start"
FLEET_STOP = "fleet.stop"
FLEET_REQUEST_ROUTED = "fleet.request.routed"
FLEET_REQUEST_COMPLETED = "fleet.request.completed"
FLEET_REQUEST_FAILOVER = "fleet.request.failover"
FLEET_REQUEST_HEDGED = "fleet.request.hedged"
FLEET_REQUEST_DEGRADED = "fleet.request.degraded"
FLEET_REPLICA_UP = "fleet.replica.up"
FLEET_REPLICA_DOWN = "fleet.replica.down"
FLEET_RING_REBUILT = "fleet.ring.rebuilt"
FLEET_FANOUT = "fleet.fanout"
FLEET_CHAOS_KILL = "fleet.chaos.kill"
FLEET_CHAOS_RESTART = "fleet.chaos.restart"

# -- planner service --------------------------------------------------
SERVICE_START = "service.start"
SERVICE_DRAIN_BEGIN = "service.drain.begin"
SERVICE_DRAIN_END = "service.drain.end"
SERVICE_REQUEST_RECEIVED = "service.request.received"
SERVICE_REQUEST_STARTED = "service.request.started"
SERVICE_REQUEST_COMPLETED = "service.request.completed"
SERVICE_REQUEST_FAILED = "service.request.failed"
SERVICE_REQUEST_REJECTED = "service.request.rejected"
SERVICE_REQUEST_READMITTED = "service.request.readmitted"
SERVICE_REQUEST_INVALID = "service.request.invalid"
SERVICE_ADMISSION_ADMITTED = "service.admission.admitted"
SERVICE_ADMISSION_REJECTED = "service.admission.rejected"
SERVICE_BREAKER_OPEN = "service.breaker.open"
SERVICE_BREAKER_CLOSE = "service.breaker.close"
SERVICE_BREAKER_PROBE = "service.breaker.probe"
SERVICE_CACHE_HIT = "service.cache.hit"
SERVICE_CACHE_MISS = "service.cache.miss"
SERVICE_CACHE_INVALIDATE = "service.cache.invalidate"
SERVICE_WATCHDOG_REAP = "service.watchdog.reap"
SERVICE_HTTP_LISTEN = "service.http.listen"
SERVICE_HTTP_ACCESS = "service.http.access"

#: Subsystem prefixes, in display order.  ``summarize_events`` groups
#: by these instead of hard-coding strings at each aggregation site.
SEARCH_PREFIX = "search."
ARENA_PREFIX = "arena."
PERFMODEL_PREFIX = "perfmodel."
DRIVER_PREFIX = "driver."
DRIVER_WORKER_PREFIX = "driver.worker."
RUNTIME_PREFIX = "runtime."
FAULTS_PREFIX = "faults."
CHECKPOINT_PREFIX = "checkpoint."
ELASTIC_PREFIX = "elastic."
SERVICE_PREFIX = "service."
FLEET_PREFIX = "fleet."
COALESCE_PREFIX = "coalesce."

EVENT_PREFIXES: Tuple[str, ...] = (
    SEARCH_PREFIX,
    ARENA_PREFIX,
    PERFMODEL_PREFIX,
    DRIVER_PREFIX,
    RUNTIME_PREFIX,
    FAULTS_PREFIX,
    CHECKPOINT_PREFIX,
    ELASTIC_PREFIX,
    SERVICE_PREFIX,
    FLEET_PREFIX,
    COALESCE_PREFIX,
)

#: Driver worker lifecycle issues surfaced per-event in summaries.
DRIVER_WORKER_ISSUES: Tuple[str, ...] = (
    DRIVER_WORKER_RETRY,
    DRIVER_WORKER_TIMEOUT,
    DRIVER_WORKER_CRASH,
    DRIVER_WORKER_ERROR,
)

#: Every registered event name.  Assembled from the module's own
#: constants so a new event cannot be added without also naming it.
EVENT_NAMES: FrozenSet[str] = frozenset(
    value
    for key, value in list(globals().items())
    if key.isupper()
    and not key.endswith(("_PREFIX", "_PREFIXES", "_ISSUES", "_NAMES"))
    and isinstance(value, str)
)

#: Constant identifier -> event name (used by the Tier-B lint rule to
#: accept ``bus.emit(SEARCH_BEGIN, ...)`` alongside registered string
#: literals).
CONSTANTS_BY_IDENTIFIER = {
    key: value
    for key, value in list(globals().items())
    if key.isupper() and isinstance(value, str) and value in EVENT_NAMES
}


def is_registered(name: str) -> bool:
    """Whether ``name`` is a registered telemetry event name."""
    return name in EVENT_NAMES


def names_with_prefix(prefix: str) -> FrozenSet[str]:
    """All registered event names under ``prefix``."""
    return frozenset(n for n in EVENT_NAMES if n.startswith(prefix))
