"""Sustained throughput under churn: elastic controller vs oracle.

Replays a seeded churn timeline through the elastic controller and
compares the throughput it sustains against a *cold re-search oracle*
that, at every decision point, runs the full per-stage-count driver
from scratch on the same degraded cluster view — the best plan money
can buy at each instant, charged nothing for finding it.

Reports, per ``benchmarks/results/BENCH_elastic.json``:

* time-weighted throughput retention (controller / oracle),
* wall-clock recovery time per churn event kind (how long a replan
  triggered by that kind takes end to end),
* decision mix (replans vs keeps vs fallbacks) and estimate counts.

The retention floor asserted here is intentionally loose — the point
is that a handful of warm search iterations per event recovers most of
what an unbounded cold re-search would, which is the paper's "cheap
search enables continuous re-planning" argument measured end to end.
"""

import json
import os
from collections import defaultdict

from common import RESULTS_DIR, emit, print_header, print_table

from repro.cluster import ClusterSpec
from repro.core import search_all_stage_counts
from repro.elastic import (
    ChurnEvent,
    ControllerPolicy,
    ElasticController,
    random_churn_timeline,
)
from repro.ir.models import build_model
from repro.runtime import Executor

BENCH_JSON = os.path.join(RESULTS_DIR, "BENCH_elastic.json")

MODEL = "gpt-4l"
NUM_NODES = 4
GPUS_PER_NODE = 2
SEED = 3
NUM_EVENTS = 8
HORIZON = 60.0
WARM_ITERATIONS = 4
ORACLE_ITERATIONS = 12

#: Controller must sustain at least this fraction of the oracle's
#: time-weighted throughput (loose on purpose; typical is >0.85).
RETENTION_FLOOR = 0.6


def _time_weights(decisions, horizon):
    """Seconds each decision's plan serves (until the next decision)."""
    times = [d.time for d in decisions]
    ends = times[1:] + [max(horizon, times[-1]) + 1.0]
    return [end - start for start, end in zip(times, ends)]


def _oracle_throughput(graph, controller, timeline, decisions):
    """Cold re-search at every decision point of the warm run.

    Rebuilds the membership state the controller saw, then runs the
    full multi-stage-count driver on the same planner view and
    measures the winner on the same executor/fault view.
    """
    from repro.elastic.controller import _MembershipState
    from repro.perfmodel import PerfModel

    state = _MembershipState()
    event_iter = iter(timeline.events)
    consumed = []
    throughputs = []
    for decision in decisions:
        while len(consumed) < sum(
            len(d.events) for d in decisions[: decision.index + 1]
        ):
            event = next(event_iter)
            state.apply(event)
            consumed.append(event)
        view = controller._project(state)
        model = controller._model_for(view.planner)
        multi = search_all_stage_counts(
            graph,
            view.planner,
            PerfModel(graph, view.planner, model.database),
            budget_per_count={"max_iterations": ORACLE_ITERATIONS},
        )
        best = multi.best.best_config
        result = Executor(graph, view.effective, seed=SEED).run(
            best, view.fault_view
        )
        throughputs.append(
            result.throughput(graph.global_batch_size)
        )
    return throughputs


def test_elastic_sustained_throughput():
    graph = build_model(MODEL)
    cluster = ClusterSpec(
        num_nodes=NUM_NODES, gpus_per_node=GPUS_PER_NODE
    )
    timeline = random_churn_timeline(
        NUM_NODES,
        GPUS_PER_NODE,
        seed=SEED,
        num_events=NUM_EVENTS,
        horizon_seconds=HORIZON,
    )
    controller = ElasticController(
        graph,
        cluster,
        seed=SEED,
        policy=ControllerPolicy(replan_iterations=WARM_ITERATIONS),
    )
    run = controller.run(timeline)
    assert run.decisions, "timeline produced no decisions"
    assert run.final_feasible, "controller must end with a servable plan"

    oracle = _oracle_throughput(
        graph, controller, timeline, run.decisions
    )
    weights = _time_weights(run.decisions, timeline.horizon)
    warm_avg = sum(
        d.throughput * w for d, w in zip(run.decisions, weights)
    ) / sum(weights)
    oracle_avg = sum(
        t * w for t, w in zip(oracle, weights)
    ) / sum(weights)
    retention = warm_avg / oracle_avg if oracle_avg > 0 else 1.0

    # Recovery wall time per event kind: replans attributed to every
    # kind in their triggering batch.
    recovery = defaultdict(list)
    for decision in run.decisions:
        if decision.action in ("replan", "fallback"):
            for event in decision.events:
                recovery[event["kind"]].append(
                    decision.replan_seconds
                )
    recovery_by_kind = {
        kind: sum(vals) / len(vals)
        for kind, vals in sorted(recovery.items())
    }

    print_header(
        "Elastic controller vs cold re-search oracle "
        f"({MODEL}, {NUM_NODES}x{GPUS_PER_NODE} GPUs, "
        f"{NUM_EVENTS} events)"
    )
    print_table(
        ["t", "events", "action", "gpus", "warm sm/s", "oracle sm/s"],
        [
            [
                f"{d.time:.1f}s",
                ",".join(e["kind"] for e in d.events)[:26],
                d.action,
                d.cluster_gpus,
                f"{d.throughput:.0f}",
                f"{o:.0f}",
            ]
            for d, o in zip(run.decisions, oracle)
        ],
    )
    emit(
        f"time-weighted throughput: controller {warm_avg:.0f} "
        f"vs oracle {oracle_avg:.0f} samples/s "
        f"(retention {retention:.1%})"
    )
    for kind, secs in recovery_by_kind.items():
        emit(f"recovery after {kind}: {secs:.2f}s wall")

    payload = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            payload = json.load(handle)
    payload["sustained_throughput"] = {
        "model": MODEL,
        "cluster": f"{NUM_NODES}x{GPUS_PER_NODE}",
        "seed": SEED,
        "num_events": NUM_EVENTS,
        "replay_digest": run.replay_digest(),
        "controller_samples_per_s": round(warm_avg, 3),
        "oracle_samples_per_s": round(oracle_avg, 3),
        "throughput_retention": round(retention, 4),
        "num_replans": run.num_replans,
        "num_decisions": len(run.decisions),
        "recovery_seconds_by_kind": {
            kind: round(secs, 4)
            for kind, secs in recovery_by_kind.items()
        },
        "warm_iterations": WARM_ITERATIONS,
        "oracle_iterations": ORACLE_ITERATIONS,
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(payload, handle, indent=2)
    emit(f"(written to {BENCH_JSON})")

    assert retention >= RETENTION_FLOOR, (
        f"controller retained only {retention:.1%} of oracle "
        f"throughput (floor {RETENTION_FLOOR:.0%})"
    )


def test_elastic_never_drops_the_plan():
    """Nasty burst: preempt to one node and stack perf faults — the
    controller must hold a servable plan at every decision."""
    graph = build_model(MODEL)
    cluster = ClusterSpec(num_nodes=4, gpus_per_node=2)
    from repro.elastic import ChurnTimeline

    timeline = ChurnTimeline(seed=1, events=(
        ChurnEvent(1.0, "node_preempt", node_id=0),
        ChurnEvent(1.1, "node_preempt", node_id=1),
        ChurnEvent(1.2, "node_preempt", node_id=2),
        ChurnEvent(5.0, "straggler_on", device_id=6, factor=3.0),
        ChurnEvent(9.0, "link_degrade", scope="intra", factor=0.4),
        ChurnEvent(14.0, "node_join", node_id=0),
        ChurnEvent(20.0, "link_degrade", scope="inter", factor=0.5),
    ))
    run = ElasticController(
        graph,
        cluster,
        seed=1,
        policy=ControllerPolicy(replan_iterations=3),
    ).run(timeline)
    for decision in run.decisions:
        assert decision.action != "halt"
        assert decision.plan_signature
    assert run.final_feasible
