"""Design-choice ablations called out in DESIGN.md.

Beyond the paper's own ablations (Figs. 12-14), DESIGN.md lists three
design choices worth quantifying:

* **rc-attach** (§4.3): attaching inc/dec-rc to every primitive vs
  treating recomputation as a standalone primitive;
* **fine-tuning** (§4.2): the op-level refinement pass on/off;
* **allocator over-estimation** (§3.3): the padded reserve vs a bare
  maximum — measuring how often "predicted feasible" then OOMs on the
  executor.
"""

from common import get_setup, print_header, print_table

from repro.core import AcesoSearch, AcesoSearchOptions, SearchBudget
from repro.parallel import balanced_config
from repro.perfmodel import PerfModel

BUDGET = {"max_estimates": 3_000}


def _search_with(model_name, gpus, stages, **option_overrides):
    graph, cluster, perf_model, _ = get_setup(model_name, gpus)
    options = AcesoSearchOptions(**option_overrides)
    search = AcesoSearch(graph, cluster, perf_model, options=options)
    init = balanced_config(graph, cluster, stages)
    return search.run(init, SearchBudget(**BUDGET))


def test_ablation_rc_attach(benchmark):
    """rc-attach never hurts and matters under memory pressure."""
    def run():
        on = _search_with("gpt3-6.7b", 8, 4, attach_recompute=True)
        off = _search_with("gpt3-6.7b", 8, 4, attach_recompute=False)
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation: attach inc/dec-rc to every primitive (§4.3)")
    print_table(
        ["variant", "best objective", "feasible"],
        [
            ["rc-attach ON", f"{on.best_objective:.3f}", on.is_feasible],
            ["rc-attach OFF", f"{off.best_objective:.3f}", off.is_feasible],
        ],
    )
    assert on.is_feasible
    assert on.best_objective <= off.best_objective * 1.02


def test_ablation_finetune(benchmark):
    """Op-level fine-tuning is a refinement: never worse, same budget."""
    def run():
        on = _search_with("gpt3-6.7b", 8, 4, enable_finetune=True)
        off = _search_with("gpt3-6.7b", 8, 4, enable_finetune=False)
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation: op-level fine-tuning pass (§4.2)")
    print_table(
        ["variant", "best objective"],
        [
            ["fine-tuning ON", f"{on.best_objective:.3f}"],
            ["fine-tuning OFF", f"{off.best_objective:.3f}"],
        ],
    )
    assert on.best_objective <= off.best_objective * 1.02


def test_ablation_allocator_reserve(benchmark):
    """Unpadded reserve admits configs that then OOM when deployed."""

    def run():
        graph, cluster, _, executor = get_setup("gpt3-6.7b", 8)
        rows = []
        for factor in (0.0001, 1.0, 2.0):
            model = PerfModel(
                graph, cluster,
                get_setup("gpt3-6.7b", 8)[2].database,
                reserve_safety_factor=factor,
            )
            search = AcesoSearch(graph, cluster, model)
            init = balanced_config(graph, cluster, 4)
            result = search.run(init, SearchBudget(**BUDGET))
            run_result = executor.run(result.best_config)
            rows.append(
                {
                    "factor": factor,
                    "predicted_feasible": result.is_feasible,
                    "actually_oom": run_result.oom,
                    "margin": (
                        run_result.memory_limit - run_result.max_memory
                    ) / 2**30,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation: allocator reserve safety factor (§3.3)")
    print_table(
        ["safety factor", "predicted feasible", "actual OOM", "margin GB"],
        [
            [r["factor"], r["predicted_feasible"], r["actually_oom"],
             f"{r['margin']:.2f}"]
            for r in rows
        ],
    )
    # The paper's padded reserve keeps deployments safe.
    padded = rows[-1]
    assert padded["predicted_feasible"] and not padded["actually_oom"]
    # A bigger pad never leaves less margin than no pad.
    assert rows[-1]["margin"] >= rows[0]["margin"] - 0.25
