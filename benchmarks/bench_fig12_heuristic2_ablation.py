"""Figure 12 (Exp#5b) — convergence with and without Heuristic-2.

Paper claims: given a generous budget both reach similar quality, but
random primitive selection converges along a less efficient path and
lands worse when the budget is tight.
"""

from common import emit, get_setup, print_header, print_series, print_table

from repro.baselines import random_search
from repro.core import AcesoSearch, SearchBudget
from repro.parallel import balanced_config

SETTINGS = [("gpt3-6.7b", 8, 4), ("wresnet-6.8b", 8, 4)]
TIGHT_BUDGET = {"max_estimates": 2_500}
RANDOM_SEEDS = (1, 2, 3)


def _feasible_curve(result, cap: float = 1e6):
    """Best-objective curve, truncated to the feasible region."""
    return [b for _, b in result.trace.convergence if b < cap]


def _run_setting(model_name, gpus, stages):
    graph, cluster, perf_model, _ = get_setup(model_name, gpus)
    init = balanced_config(graph, cluster, stages)
    search = AcesoSearch(graph, cluster, perf_model)
    with_h2 = search.run(init, SearchBudget(**TIGHT_BUDGET))
    randoms = [
        random_search(
            graph, cluster, perf_model, init,
            SearchBudget(**TIGHT_BUDGET), seed=seed,
        )
        for seed in RANDOM_SEEDS
    ]
    return with_h2, randoms


def test_fig12_heuristic2_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: [ _run_setting(*s) for s in SETTINGS ],
        rounds=1, iterations=1,
    )

    from repro.analysis import ascii_line_plot, downsample

    print_header("Figure 12: convergence with/without Heuristic-2")
    rows = []
    for (model_name, gpus, _), (with_h2, randoms) in zip(SETTINGS, results):
        xs = [f"{e:.2f}s" for e, _ in with_h2.trace.convergence]
        ys = [b for _, b in with_h2.trace.convergence]
        print_series(f"{model_name} heuristic-2", xs, ys)
        curves = {"heuristic-2": _feasible_curve(with_h2)}
        for i, run in enumerate(randoms):
            curves[f"random-{i + 1}"] = _feasible_curve(run)
        usable = {k: v for k, v in curves.items() if len(v) >= 2}
        if usable:
            emit(
                ascii_line_plot(
                    usable,
                    title=f"{model_name}@{gpus}gpu convergence "
                    f"(feasible region)",
                    width=50,
                    height=10,
                )
            )
        rows.append(
            [
                f"{model_name}@{gpus}gpu",
                f"{with_h2.best_objective:.3f}",
                " / ".join(f"{r.best_objective:.3f}" for r in randoms),
            ]
        )
    print_table(["setting", "with heuristic-2", "random x3"], rows)

    # Paper claim: both reach similar configurations given budget, but
    # random's path is less efficient.  Aggregate across settings: the
    # heuristic tracks close to the random *mean* everywhere and beats
    # it overall (individual random seeds can get lucky on one model).
    gaps = []
    for _, (with_h2, randoms) in zip(SETTINGS, results):
        best_random = min(r.best_objective for r in randoms)
        mean_random = sum(r.best_objective for r in randoms) / len(randoms)
        assert with_h2.best_objective <= mean_random * 1.02
        assert with_h2.best_objective <= best_random * 1.05
        gaps.append(with_h2.best_objective / mean_random)
    assert sum(gaps) / len(gaps) <= 1.005, gaps
