"""Figure 16 (Exp#9) — predicted vs actual memory consumption.

Paper claims (C4): memory prediction errs ~14.3% (GPT-3) and ~9.1%
(Wide-ResNet) on average, *by design on the over-estimating side* —
the reserve is deliberately padded so a predicted-feasible plan never
OOMs when deployed.  Over-estimation is largest on 1-GPU cases.
"""

from common import emit, get_comparison, get_setup, ladder, print_header, print_table

from repro.analysis import mean_abs_pct_error

FAMILIES = ["gpt3", "wresnet"]


def _collect(family):
    cases = []
    for model_name, gpus in ladder(family):
        comparison = get_comparison(model_name, gpus)
        _, _, perf_model, executor = get_setup(model_name, gpus)
        for system, outcome in comparison.outcomes.items():
            if outcome.failed:
                continue
            report = perf_model.estimate(outcome.config)
            run = executor.run(outcome.config)
            for stage in range(report.num_stages):
                cases.append(
                    {
                        "label": f"{model_name}@{gpus} {system} s{stage}",
                        "predicted": report.peak_memories[stage],
                        "actual": run.stage_peak_memory[stage],
                        "actual_oom": run.oom,
                    }
                )
    return cases


def test_fig16_memory_accuracy(benchmark):
    collected = benchmark.pedantic(
        lambda: {f: _collect(f) for f in FAMILIES}, rounds=1, iterations=1
    )

    print_header("Figure 16: predicted vs actual peak memory")
    for family in FAMILIES:
        cases = collected[family]
        rows = [
            [
                c["label"],
                f"{c['predicted'] / 2**30:.2f}GB",
                f"{c['actual'] / 2**30:.2f}GB",
                f"{100 * (c['predicted'] - c['actual']) / c['actual']:+.1f}%",
            ]
            for c in cases[:12]
        ]
        print_table(["case (first 12)", "predicted", "actual", "error"], rows)
        predicted = [c["predicted"] for c in cases]
        actual = [c["actual"] for c in cases]
        error = mean_abs_pct_error(predicted, actual)
        over = sum(p >= a for p, a in zip(predicted, actual)) / len(cases)
        emit(
            f"{family}: mean |error| {error:.2f}% "
            f"(paper: {'14.26' if family == 'gpt3' else '9.14'}%), "
            f"over-estimated in {100 * over:.0f}% of stages"
        )

        assert len(cases) >= 8
        # Bounded error...
        assert error < 30.0, (family, error)
        # ...with the paper's deliberate over-estimation bias.
        assert over > 0.7, (family, over)
        # Safety property: nothing predicted-feasible actually OOMs.
        assert not any(c["actual_oom"] for c in cases)
