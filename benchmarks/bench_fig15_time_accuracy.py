"""Figure 15 (Exp#8) — predicted vs actual iteration time.

Paper claims (C4): the performance model predicts iteration time with
average error ~2.7% on GPT-3 and ~7.3% on Wide-ResNet.  We evaluate
the same way: for every Figure 7 setting, predict the winning
configurations of each system and compare against ground-truth
execution.
"""

from common import emit, get_comparison, ladder, print_header, print_table

from repro.analysis import mean_abs_pct_error

FAMILIES = ["gpt3", "wresnet"]
ERROR_BUDGET = {"gpt3": 8.0, "wresnet": 12.0}  # percent, mean


def _collect(family):
    predicted, actual, labels = [], [], []
    for model_name, gpus in ladder(family):
        comparison = get_comparison(model_name, gpus)
        for system, outcome in comparison.outcomes.items():
            if outcome.failed or outcome.oom:
                continue
            predicted.append(outcome.predicted_time)
            actual.append(outcome.actual_time)
            labels.append(f"{model_name}@{gpus} {system}")
    return predicted, actual, labels


def test_fig15_time_accuracy(benchmark):
    collected = benchmark.pedantic(
        lambda: {f: _collect(f) for f in FAMILIES}, rounds=1, iterations=1
    )

    print_header("Figure 15: predicted vs actual iteration time")
    for family in FAMILIES:
        predicted, actual, labels = collected[family]
        rows = [
            [label, f"{p:.2f}s", f"{a:.2f}s", f"{100 * (p - a) / a:+.1f}%"]
            for label, p, a in zip(labels, predicted, actual)
        ]
        print_table(["case", "predicted", "actual", "error"], rows)
        error = mean_abs_pct_error(predicted, actual)
        emit(f"{family} mean |error|: {error:.2f}% "
              f"(paper: {'2.70' if family == 'gpt3' else '7.29'}%)")

        assert len(predicted) >= 4
        assert error < ERROR_BUDGET[family], (family, error)
