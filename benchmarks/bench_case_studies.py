"""§5.4 case studies — the configurations only Aceso can express.

Case 1 (GPT-3 on 4 GPUs): Aceso may choose uneven pipeline stages with
partial, op-level recomputation, while Megatron-LM/Alpa are stuck with
even stages and all-or-nothing recomputation.

Case 2 (Wide-ResNet): inside a stage, Aceso can mix data and tensor
parallelism per operator where Alpa applies one setting to the whole
stage.

These benches *display* the found plans and assert the structural
expressiveness claims (Aceso's space strictly contains the baselines'),
rather than requiring one particular plan to win — which plan wins is
simulator-dependent.
"""

import numpy as np

from common import emit, get_comparison, get_setup, print_header

SETTINGS = {"gpt": ("gpt3-1.3b", 4), "wresnet": ("wresnet-2b", 8)}


def _describe(comparison):
    lines = {}
    for system, outcome in comparison.outcomes.items():
        if outcome.failed:
            lines[system] = "FAILED"
            continue
        config = outcome.config
        stages = []
        for stage in config.stages:
            tps = sorted({int(t) for t in np.unique(stage.tp)})
            rc = int(stage.recompute.sum())
            stages.append(
                f"[{stage.num_ops} ops x {stage.num_devices}gpu "
                f"tp={tps} rc={rc}/{stage.num_ops}]"
            )
        lines[system] = " ".join(stages) + f" mbs={config.microbatch_size}"
    return lines


def test_case_study_gpt(benchmark):
    model_name, gpus = SETTINGS["gpt"]
    comparison = benchmark.pedantic(
        get_comparison, args=(model_name, gpus), rounds=1, iterations=1
    )
    print_header(f"Case study: {model_name} on {gpus} GPUs")
    for system, line in _describe(comparison).items():
        emit(f"  {system:<9} {line}")

    aceso = comparison.outcomes["aceso"].config
    megatron = comparison.outcomes["megatron"].config

    # Megatron's structural limits: even-ish op counts per stage and
    # all-or-nothing recomputation.
    counts = [s.num_ops for s in megatron.stages]
    assert max(counts) - min(counts) <= 1
    for stage in megatron.stages:
        assert stage.recompute.all() or not stage.recompute.any()

    # Aceso's plan is expressible in its richer space (trivially true)
    # and executes at least as fast as both baselines.
    assert (
        comparison.outcomes["aceso"].throughput
        >= comparison.outcomes["megatron"].throughput * 0.97
    )
    assert (
        comparison.outcomes["aceso"].throughput
        >= comparison.outcomes["alpa"].throughput * 0.97
    )
    # When Aceso recomputes at all, it recomputes *partially* somewhere
    # (op-level recomputation), never forced to a model-wide flag.
    partial = any(
        0 < s.recompute.sum() < s.num_ops for s in aceso.stages
    )
    total = sum(int(s.recompute.sum()) for s in aceso.stages)
    assert partial or total == 0 or all(
        s.recompute.all() for s in aceso.stages
    )


def test_case_study_wresnet(benchmark):
    model_name, gpus = SETTINGS["wresnet"]
    comparison = benchmark.pedantic(
        get_comparison, args=(model_name, gpus), rounds=1, iterations=1
    )
    print_header(f"Case study: {model_name} on {gpus} GPUs")
    for system, line in _describe(comparison).items():
        emit(f"  {system:<9} {line}")

    # Alpa's intra-stage limit: one (tp, dp) per stage.
    alpa = comparison.outcomes["alpa"].config
    for stage in alpa.stages:
        assert len(np.unique(stage.tp)) == 1

    # Aceso's plan deploys and at least matches Alpa.
    assert (
        comparison.outcomes["aceso"].throughput
        >= comparison.outcomes["alpa"].throughput * 0.97
    )
