"""Figure 9 (Exp#3) — scalability to 1K-layer models on 8 GPUs.

Paper claims (C3): Alpa's search cost grows with layer count and it
fails compilation beyond 64 layers; Aceso always finishes within its
budget and finds executable configurations at every depth, averaging
~1.2x Alpa's throughput where both run.
"""

import os

import pytest

from common import get_setup, print_header, print_table

from repro.baselines import AlpaCompilationError, alpa_search
from repro.core import search_all_stage_counts

SMALL_LAYERS = [16, 32, 64, 128, 256]
PAPER_LAYERS = [16, 32, 64, 128, 256, 512, 1024]
LAYERS = (
    PAPER_LAYERS
    if os.environ.get("REPRO_BENCH_SCALE", "small") == "paper"
    else SMALL_LAYERS
)
GPUS = 8


def _run_depth(num_layers):
    graph, cluster, perf_model, executor = get_setup(
        f"gpt-{num_layers}l", GPUS
    )
    multi = search_all_stage_counts(
        graph, cluster, perf_model,
        budget_per_count={"max_iterations": 10},
    )
    aceso_run = executor.run(multi.best.best_config)
    aceso_thpt = aceso_run.throughput(graph.global_batch_size)
    try:
        alpa = alpa_search(graph, cluster, perf_model)
        alpa_cost = alpa.simulated_search_seconds
        alpa_run = executor.run(alpa.best_config)
        alpa_thpt = alpa_run.throughput(graph.global_batch_size)
    except AlpaCompilationError:
        alpa_cost = None
        alpa_thpt = None
    return {
        "layers": num_layers,
        "aceso_cost": multi.parallel_seconds,
        "aceso_thpt": aceso_thpt,
        "alpa_cost": alpa_cost,
        "alpa_thpt": alpa_thpt,
    }


def test_fig09_scalability(benchmark):
    results = benchmark.pedantic(
        lambda: [_run_depth(n) for n in LAYERS], rounds=1, iterations=1
    )

    print_header(f"Figure 9: scaling to deep models ({GPUS} GPUs)")
    rows = []
    for r in results:
        rows.append(
            [
                r["layers"],
                f"{r['aceso_cost']:.1f}s",
                f"{r['aceso_thpt']:.2f}",
                "FAIL" if r["alpa_cost"] is None else f"{r['alpa_cost']:.0f}s",
                "x" if r["alpa_thpt"] is None else f"{r['alpa_thpt']:.2f}",
            ]
        )
    print_table(
        ["layers", "aceso search", "aceso thpt", "alpa search", "alpa thpt"],
        rows,
    )

    # Aceso succeeds at every depth.
    assert all(r["aceso_thpt"] > 0 for r in results)
    # Alpa fails past 64 layers, succeeds at or under it.
    for r in results:
        if r["layers"] > 64:
            assert r["alpa_cost"] is None, r
        else:
            assert r["alpa_cost"] is not None, r
    # Alpa's cost grows with depth where it runs.
    alpa_costs = [r["alpa_cost"] for r in results if r["alpa_cost"]]
    assert alpa_costs == sorted(alpa_costs)
    # Where both run, Aceso's plans are at least competitive.
    both = [r for r in results if r["alpa_thpt"]]
    speedups = [r["aceso_thpt"] / r["alpa_thpt"] for r in both]
    assert all(s > 0.97 for s in speedups), speedups
