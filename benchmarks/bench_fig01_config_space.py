"""Figure 1 — configuration-space growth with layers and mechanisms.

Paper claim: the number of possible configurations grows exponentially
with model layers, and each added mechanism (pipeline, recomputation)
multiplies the space further (GPT on 16 devices).
"""

from common import print_header, print_series

from repro.parallel import config_space_table

# From 2 layers up: with a single layer pipeline parallelism adds no
# choices, so the 2- and 3-mechanism counts coincide there.
LAYER_COUNTS = [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]


def test_fig01_config_space(benchmark):
    table = benchmark(config_space_table, LAYER_COUNTS, 16)

    print_header("Figure 1: log10(#configurations), GPT on 16 devices")
    for series in ("2 mechanisms", "3 mechanisms", "4 mechanisms"):
        print_series(series, LAYER_COUNTS, table[series], fmt="{:.1f}")

    # Shape: strictly more configs with more mechanisms, exponential
    # (linear-in-log) growth with layers.
    for i, _ in enumerate(LAYER_COUNTS):
        assert (
            table["2 mechanisms"][i]
            < table["3 mechanisms"][i]
            < table["4 mechanisms"][i]
        )
    growth = [
        b - a
        for a, b in zip(table["4 mechanisms"], table["4 mechanisms"][1:])
    ]
    assert all(g > 0 for g in growth)
    # The paper's headline: >10^1000 configurations at 1K layers.
    assert table["4 mechanisms"][-1] > 1000
