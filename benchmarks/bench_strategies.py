"""Strategy arena on the scalability model: quality vs search cost.

Races every registered searcher (greedy bottleneck alleviation, MCMC
over the reconfiguration primitives, per-bottleneck-kind UCB1 bandit)
on ``gpt-48l`` under an **equal estimate budget** — the currency the
paper charges search cost in (Figure 8 counts configurations
estimated, not wall seconds).  Each lane starts from the same balanced
configuration with a fresh performance model, so ``num_estimates`` and
``estimates_to_best`` are directly comparable.

Reports, per ``benchmarks/results/BENCH_strategies.json``:

* per-strategy best objective and estimates-to-best under the shared
  budget (the quality-vs-cost headline),
* the deterministic per-iteration convergence curve of every lane,
* the tournament winner.

Every field asserted or written here is bit-reproducible from the
recorded seeds: lanes are seeded, curves are indexed by iteration (not
wall clock), and the comparison against the committed JSON skips the
wall-clock fields (``elapsed_seconds``/``wall_seconds``) on purpose.
The quality floor is the paper's claim in miniature: greedy must reach
a feasible plan at least as good as every competitor's under the same
budget on this setting.
"""

import json
import os

from common import RESULTS_DIR, emit, print_header, print_table

from repro.arena import ArenaEntry, run_tournament
from repro.cluster import paper_cluster
from repro.ir.models import build_model
from repro.profiling import SimulatedProfiler

BENCH_JSON = os.path.join(RESULTS_DIR, "BENCH_strategies.json")

MODEL = "gpt-48l"
GPUS = 8
STAGE_COUNT = 8
SEED = 0
#: Equal per-lane search budget, in model estimates.
MAX_ESTIMATES = 2000

#: The deterministic per-lane fields the committed JSON must reproduce
#: bit-for-bit; wall-clock fields are excluded by construction.
DETERMINISTIC_FIELDS = (
    "strategy",
    "seed",
    "best_objective",
    "feasible",
    "converged",
    "num_estimates",
    "estimates_to_best",
    "iterations",
    "best_signature",
    "curve",
    "error",
)


def _deterministic_view(payload: dict) -> dict:
    """The bit-reproducible projection of a tournament record."""
    return {
        "format_version": payload["format_version"],
        "label": payload["label"],
        "stage_count": payload["stage_count"],
        "budget": payload["budget"],
        "entries": [
            {field: entry[field] for field in DETERMINISTIC_FIELDS}
            for entry in payload["entries"]
        ],
        "winner": payload["winner"],
    }


def run_strategy_tournament():
    """One seeded tournament over all registered strategies."""
    graph = build_model(MODEL)
    cluster = paper_cluster(GPUS)
    database = SimulatedProfiler(cluster, seed=SEED).profile(graph)
    entries = [
        ArenaEntry(strategy=name, seed=SEED)
        for name in ("greedy", "mcmc", "bandit")
    ]
    return run_tournament(
        graph,
        cluster,
        database,
        entries=entries,
        stage_count=STAGE_COUNT,
        budget_per_entry={"max_estimates": MAX_ESTIMATES},
        label=f"{MODEL}/gpus={GPUS}/stages={STAGE_COUNT}",
    )


def test_strategy_arena_quality_vs_cost():
    result = run_strategy_tournament()
    assert len(result.outcomes) == 3
    for outcome in result.outcomes:
        assert not outcome.failed, (
            f"{outcome.strategy}#{outcome.seed}: {outcome.error}"
        )
        assert outcome.feasible, (
            f"{outcome.strategy} found no feasible plan in "
            f"{MAX_ESTIMATES} estimates"
        )
        # Budgets are cooperative (checked at iteration boundaries),
        # so a lane may overshoot by its final iteration's estimates.
        assert outcome.num_estimates <= MAX_ESTIMATES * 1.25

    print_header(
        f"Strategy arena ({MODEL}, {GPUS} GPUs, "
        f"{MAX_ESTIMATES} estimates/lane)"
    )
    print_table(
        ["strategy", "objective", "estimates", "to-best", "iters"],
        [
            [
                f"{o.strategy}#{o.seed}",
                f"{o.best_objective:.6f}",
                o.num_estimates,
                o.estimates_to_best,
                o.iterations,
            ]
            for o in result.outcomes
        ],
    )
    winner = result.winner
    emit(
        f"winner: {winner.strategy} ({winner.best_objective:.6f} after "
        f"{winner.estimates_to_best} estimates)"
    )

    payload = result.to_json()
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            committed = json.load(handle)
        assert _deterministic_view(committed) == _deterministic_view(
            payload
        ), (
            "tournament drifted from the committed "
            "BENCH_strategies.json — regenerate it (delete the file "
            "and rerun) only with an intentional search change"
        )
        emit(f"(matches committed {BENCH_JSON})")
    else:
        result.write_json(BENCH_JSON)
        emit(f"(written to {BENCH_JSON})")

    # The paper's claim in miniature: greedy bottleneck alleviation is
    # at least as good as the generic strategies under an equal budget.
    greedy = result.outcome_for("greedy")
    for other in ("mcmc", "bandit"):
        outcome = result.outcome_for(other)
        assert greedy.best_objective <= outcome.best_objective * 1.05, (
            f"greedy ({greedy.best_objective:.6f}) lost to {other} "
            f"({outcome.best_objective:.6f}) by more than 5%"
        )
