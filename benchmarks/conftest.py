"""Benchmark-suite configuration.

Makes the benches importable (adds this directory to ``sys.path``) and
appends the regenerated figure/table data to the terminal report, so a
plain ``pytest benchmarks/ --benchmark-only`` run carries the whole
reproduction record even though pytest captures per-test stdout.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    from common import RESULTS_PATH

    path = Path(RESULTS_PATH)
    if not path.exists():
        return
    terminalreporter.section("regenerated paper figures and tables")
    terminalreporter.write(path.read_text())
    terminalreporter.write_line(f"\n(persisted at {path})")
