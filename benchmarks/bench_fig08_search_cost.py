"""Figure 8 (Exp#2) — configuration search cost, Aceso vs Alpa.

Paper claim (C2): in every case Aceso uses less than 5% of Alpa's
search time.  Alpa's cost here is its measured candidate count times a
fixed per-compile charge (the DESIGN.md substitution for XLA
compilation); Aceso's is the wall-clock of the slowest stage-count
search (they run in parallel, §4.3).
"""

from common import get_comparison, ladder, print_header, print_table


def _collect(families):
    rows = []
    ratios = []
    for family in families:
        for model_name, gpus in ladder(family):
            comparison = get_comparison(model_name, gpus)
            if "alpa" not in comparison.outcomes:
                continue
            alpa = comparison.outcomes["alpa"].search_seconds
            aceso = comparison.outcomes["aceso"].search_seconds
            if alpa <= 0 or alpa == float("inf"):
                continue
            ratio = aceso / alpa
            ratios.append(ratio)
            rows.append(
                [
                    f"{model_name}@{gpus}gpu",
                    f"{alpa:.0f}s",
                    f"{aceso:.1f}s",
                    f"{100 * ratio:.1f}%",
                ]
            )
    return rows, ratios


def test_fig08_search_cost(benchmark):
    rows, ratios = benchmark.pedantic(
        _collect, args=(["gpt3", "wresnet"],), rounds=1, iterations=1
    )

    print_header("Figure 8: search cost (Alpa vs Aceso)")
    print_table(["setting", "alpa", "aceso", "aceso/alpa"], rows)

    assert rows, "no comparable settings"
    # C2: Aceso under 5% of Alpa's search cost in every case.
    assert all(r < 0.05 for r in ratios), ratios
