"""Figure 7 (Exp#1) — training throughput of GPT-3, Wide-ResNet, T5.

Paper claims (C1): Aceso finds the best configuration in every setting;
up to 1.27x over Alpa on GPT-3, up to 1.33x over Alpa / 1.78x over
Megatron-LM on Wide-ResNet, and up to 1.50x over Megatron-LM on T5
(Alpa has no official T5, so T5 compares against Megatron-LM only).

Shape asserted here: Aceso never loses, and wins somewhere on each
model family.  Absolute factors are simulator-dependent.
"""

import pytest

from common import emit, get_comparison, ladder, print_header, print_table

from repro.analysis import normalize


def _rows_for(family, systems):
    rows = []
    peak_speedup = {}
    for model_name, gpus in ladder(family):
        comparison = get_comparison(model_name, gpus)
        throughputs = {
            name: comparison.outcomes[name].throughput for name in systems
        }
        series = normalize([throughputs[s] for s in systems])
        rows.append(
            [f"{model_name}@{gpus}gpu"]
            + [f"{v:.3f}" for v in series]
        )
        for name in systems:
            if name != "aceso" and throughputs[name] > 0:
                ratio = throughputs["aceso"] / throughputs[name]
                peak_speedup[name] = max(
                    peak_speedup.get(name, 0.0), ratio
                )
    return rows, peak_speedup


@pytest.mark.parametrize(
    "family,systems",
    [
        ("gpt3", ["megatron", "alpa", "aceso"]),
        ("wresnet", ["megatron", "alpa", "aceso"]),
        ("t5", ["megatron", "aceso"]),
    ],
)
def test_fig07_throughput(benchmark, family, systems):
    rows, peak = benchmark.pedantic(
        _rows_for, args=(family, systems), rounds=1, iterations=1
    )

    print_header(
        f"Figure 7 ({family}): normalized training throughput"
    )
    print_table(["setting"] + systems, rows)
    for name, ratio in peak.items():
        emit(f"peak aceso speedup vs {name}: {ratio:.2f}x")
    from repro.analysis import ascii_bar_chart

    bar_labels = []
    bar_values = []
    for row in rows:
        for system, value in zip(systems, row[1:]):
            bar_labels.append(f"{row[0]} {system}")
            bar_values.append(float(value))
    emit(ascii_bar_chart(bar_labels, bar_values, width=40))

    # Aceso at least matches every baseline in every setting (small
    # tolerance for executor noise)...
    for row in rows:
        values = [float(v) for v in row[1:]]
        assert values[-1] >= max(values[:-1]) - 0.03, row
    # ...and strictly beats some baseline somewhere on this family.
    assert max(peak.values()) > 1.02
