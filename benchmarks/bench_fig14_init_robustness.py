"""Figure 14 (Exp#7) — robustness to the initial configuration.

Paper claims: starting from a balanced partition, an op-imbalanced
partition, or a GPU-imbalanced allocation, the search converges to
configurations of similar quality.
"""

from common import get_setup, print_header, print_table

from repro.core import AcesoSearch, SearchBudget
from repro.parallel import (
    balanced_config,
    imbalanced_gpu_config,
    imbalanced_op_config,
)

SETTINGS = [("gpt3-1.3b", 4, 3), ("wresnet-2b", 8, 4)]
BUDGET = {"max_estimates": 4_000}


def _run_setting(model_name, gpus, stages):
    graph, cluster, perf_model, _ = get_setup(model_name, gpus)
    inits = {
        "balanced": balanced_config(graph, cluster, stages),
        "imbalance-op": imbalanced_op_config(graph, cluster, stages),
        "imbalance-GPU": imbalanced_gpu_config(graph, cluster, stages),
    }
    finals = {}
    starts = {}
    for name, init in inits.items():
        starts[name] = perf_model.objective(init)
        search = AcesoSearch(graph, cluster, perf_model)
        result = search.run(init, SearchBudget(**BUDGET))
        finals[name] = result.best_objective
    return starts, finals


def test_fig14_init_robustness(benchmark):
    results = benchmark.pedantic(
        lambda: [_run_setting(*s) for s in SETTINGS], rounds=1, iterations=1
    )

    print_header("Figure 14: convergence from different initial configs")
    names = ["balanced", "imbalance-op", "imbalance-GPU"]
    rows = []
    for (model_name, gpus, _), (starts, finals) in zip(SETTINGS, results):
        rows.append(
            [f"{model_name}@{gpus}gpu", "start"]
            + [f"{starts[n]:.3f}" for n in names]
        )
        rows.append(
            [f"{model_name}@{gpus}gpu", "final"]
            + [f"{finals[n]:.3f}" for n in names]
        )
    print_table(["setting", ""] + names, rows)

    for starts, finals in results:
        best = min(finals.values())
        # All three starts converge within 10% of the best final.
        for name, value in finals.items():
            assert value <= best * 1.10, (name, finals)
        # And the bad starts actually improved (they were worse).
        assert finals["imbalance-op"] <= starts["imbalance-op"]
        assert finals["imbalance-GPU"] <= starts["imbalance-GPU"]
