"""Serving latency: single daemon vs a 4-replica fleet, cold vs warm.

Drives a deterministic synthetic planner (fixed simulated search time)
through both fronts with the same workload — a cold pass over unique
fingerprints, then a warm pass over the same ones — and records
p50/p99 latency and plans/s for each cell, plus the coalescing rate
under a same-fingerprint burst.

Gates are *ratios measured on the same box* (machine-independent, like
the perfmodel gate):

* a warm cache hit must be far faster than a cold search
  (``warm_p50 <= cold_p50 * WARM_RATIO``) on both fronts;
* fleet routing overhead on a cold request is bounded
  (``fleet_cold_p50 <= single_cold_p50 * OVERHEAD_RATIO``);
* nothing is lost: every request is served, and a burst of identical
  concurrent requests collapses to one search.

Absolute numbers are recorded in BENCH_service.json but never asserted
on — CI runners share one usable core, so plans/s there says little
about a real deployment.
"""

import json
import os
import time

from common import RESULTS_DIR, emit, print_header, print_table

from repro.service import (
    STATUS_SERVED,
    FleetConfig,
    FleetRouter,
    LocalReplicaClient,
    PlanRequest,
    PlannerDaemon,
    synthetic_planner,
)

BENCH_JSON = os.path.join(RESULTS_DIR, "BENCH_service.json")

SEARCH_SECONDS = 0.01  # simulated search time per cold plan
UNIQUE_REQUESTS = 40
FLEET_REPLICAS = 4
BURST = 8

#: Warm (cache-hit) p50 must be at most this fraction of cold p50.
WARM_RATIO = 0.5
#: Fleet cold p50 may exceed single-daemon cold p50 by at most this.
OVERHEAD_RATIO = 4.0


def _requests():
    return [
        PlanRequest(model=f"m{i % 5}", gpus=4, iterations=2, seed=i)
        for i in range(UNIQUE_REQUESTS)
    ]


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _measure(submit, requests):
    """Sequential latency per request; returns (latencies, elapsed)."""
    latencies = []
    start = time.perf_counter()
    for request in requests:
        begin = time.perf_counter()
        response = submit(request)
        latencies.append(time.perf_counter() - begin)
        assert response.status == STATUS_SERVED, response.to_json()
    return latencies, time.perf_counter() - start


def _cell(latencies, elapsed):
    return {
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "plans_per_s": round(len(latencies) / elapsed, 1),
    }


def _coalescing_burst(daemon):
    """BURST identical requests in flight -> one search, BURST answers."""
    request = PlanRequest(model="burst", gpus=4, iterations=2)
    tickets = [daemon.submit_nowait(request) for _ in range(BURST)]
    responses = [t.wait(timeout=30) for t in tickets]
    assert all(r.status == STATUS_SERVED for r in responses)
    return sum(1 for r in responses if r.coalesced)


def test_service_latency_and_fleet_overhead():
    requests = _requests()

    single = PlannerDaemon(
        planner=synthetic_planner(SEARCH_SECONDS),
        workers=2,
        queue_limit=64,
    ).start()
    try:
        cold_lat, cold_s = _measure(
            lambda r: single.submit(r, timeout=30), requests
        )
        warm_lat, warm_s = _measure(
            lambda r: single.submit(r, timeout=30), requests
        )
        coalesced = _coalescing_burst(single)
    finally:
        single.drain(timeout=10)

    replicas = {
        f"r{i}": LocalReplicaClient(
            PlannerDaemon(
                planner=synthetic_planner(SEARCH_SECONDS),
                workers=2,
                queue_limit=64,
            ).start()
        )
        for i in range(FLEET_REPLICAS)
    }
    router = FleetRouter(
        replicas,
        config=FleetConfig(health_interval=30.0),
    ).start()
    try:
        fleet_cold_lat, fleet_cold_s = _measure(
            router.submit, requests
        )
        fleet_warm_lat, fleet_warm_s = _measure(
            router.submit, requests
        )
        shares = router.ring.shares(
            [r.fingerprint() for r in requests]
        )
    finally:
        router.stop(close_replicas=True)

    cells = {
        "single_cold": _cell(cold_lat, cold_s),
        "single_warm": _cell(warm_lat, warm_s),
        "fleet_cold": _cell(fleet_cold_lat, fleet_cold_s),
        "fleet_warm": _cell(fleet_warm_lat, fleet_warm_s),
    }

    print_header(
        f"Serving latency: 1 daemon vs {FLEET_REPLICAS}-replica fleet "
        f"({UNIQUE_REQUESTS} fingerprints, "
        f"{SEARCH_SECONDS * 1e3:.0f}ms simulated search)"
    )
    print_table(
        ["front", "pass", "p50 ms", "p99 ms", "plans/s"],
        [
            [
                name.split("_")[0],
                name.split("_")[1],
                f"{cell['p50_ms']:.2f}",
                f"{cell['p99_ms']:.2f}",
                f"{cell['plans_per_s']:.0f}",
            ]
            for name, cell in cells.items()
        ],
    )
    emit(
        f"coalescing burst: {BURST} identical in-flight requests -> "
        f"{coalesced} coalesced (1 search)"
    )
    emit(
        "ring shares across replicas: "
        + ", ".join(
            f"{name}={share:.2f}"
            for name, share in sorted(shares.items())
        )
    )

    warm_ratio = cells["single_warm"]["p50_ms"] / cells[
        "single_cold"
    ]["p50_ms"]
    fleet_warm_ratio = cells["fleet_warm"]["p50_ms"] / cells[
        "fleet_cold"
    ]["p50_ms"]
    overhead = cells["fleet_cold"]["p50_ms"] / cells[
        "single_cold"
    ]["p50_ms"]
    emit(
        f"warm/cold p50 ratio: single {warm_ratio:.2f}, "
        f"fleet {fleet_warm_ratio:.2f} (gate <= {WARM_RATIO})"
    )
    emit(
        f"fleet/single cold p50 overhead: {overhead:.2f}x "
        f"(gate <= {OVERHEAD_RATIO}x)"
    )

    # Ratio gates: same-box, machine-independent.
    assert warm_ratio <= WARM_RATIO, (
        "cache hits are not meaningfully faster than cold searches"
    )
    assert fleet_warm_ratio <= WARM_RATIO, (
        "the fleet's shared cache tier is not being hit"
    )
    assert overhead <= OVERHEAD_RATIO, (
        "fleet routing overhead exceeds the budget"
    )
    assert coalesced == BURST - 1, (
        f"expected {BURST - 1} coalesced followers, got {coalesced}"
    )
    # Balance sanity: no replica starves on this workload.
    assert all(share > 0 for share in shares.values())

    payload = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            payload = json.load(handle)
    payload["fleet_latency"] = {
        "unique_requests": UNIQUE_REQUESTS,
        "replicas": FLEET_REPLICAS,
        "simulated_search_ms": SEARCH_SECONDS * 1e3,
        "cells": cells,
        "warm_cold_p50_ratio": round(warm_ratio, 4),
        "fleet_warm_cold_p50_ratio": round(fleet_warm_ratio, 4),
        "fleet_overhead_p50_ratio": round(overhead, 4),
        "coalesced_of_burst": f"{coalesced}/{BURST}",
        "ring_shares": {
            name: round(share, 4)
            for name, share in sorted(shares.items())
        },
        "gates": {
            "warm_ratio_max": WARM_RATIO,
            "overhead_ratio_max": OVERHEAD_RATIO,
        },
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(payload, handle, indent=2)
    emit(f"(written to {BENCH_JSON})")
