"""Figure 10 (Exp#4) — exploration efficiency vs a DP solver.

Paper claims: the pruned dynamic program covers ~10^7 configurations
(GPT-3 2.6B) while Aceso explores ~1% of that, and the two approaches'
final configurations perform the same or Aceso slightly better when
actually executed.
"""

from common import get_setup, print_header, print_table

from repro.baselines import DPSolverOptions, dp_solve
from repro.core import search_all_stage_counts

SETTINGS = [("gpt3-350m", 4), ("gpt3-1.3b", 4)]


def _run_setting(model_name, gpus):
    graph, cluster, perf_model, executor = get_setup(model_name, gpus)
    dp = dp_solve(
        graph, cluster, perf_model,
        options=DPSolverOptions(
            microbatch_sizes=[2, 4, 8], max_stages=gpus, unit="op"
        ),
    )
    before = perf_model.num_estimates
    multi = search_all_stage_counts(
        graph, cluster, perf_model,
        budget_per_count={"max_iterations": 15},
    )
    aceso_explored = perf_model.num_estimates - before
    dp_run = executor.run(dp.best_config)
    aceso_run = executor.run(multi.best.best_config)
    return {
        "setting": f"{model_name}@{gpus}gpu",
        "dp_explored": dp.explored_configs,
        "aceso_explored": aceso_explored,
        "dp_thpt": dp_run.throughput(graph.global_batch_size),
        "aceso_thpt": aceso_run.throughput(graph.global_batch_size),
    }


def test_fig10_dp_vs_aceso(benchmark):
    results = benchmark.pedantic(
        lambda: [_run_setting(m, g) for m, g in SETTINGS],
        rounds=1, iterations=1,
    )

    print_header("Figure 10: explored configurations and final quality")
    rows = [
        [
            r["setting"],
            f"{r['dp_explored']:.2e}",
            f"{r['aceso_explored']:.2e}",
            f"{100 * r['aceso_explored'] / r['dp_explored']:.2f}%",
            f"{r['dp_thpt']:.2f}",
            f"{r['aceso_thpt']:.2f}",
        ]
        for r in results
    ]
    print_table(
        ["setting", "DP explored", "Aceso explored", "ratio",
         "DP thpt", "Aceso thpt"],
        rows,
    )

    for r in results:
        # Aceso explores a small fraction of the DP's coverage...
        assert r["aceso_explored"] < 0.05 * r["dp_explored"], r
        # ...yet executes as well or better (2% noise tolerance).
        assert r["aceso_thpt"] >= r["dp_thpt"] * 0.98, r
