"""Microbenchmark: estimator throughput and the multiprocess driver.

Quantifies the perf claims of the incremental-estimation and telemetry
work:

* **estimates/sec** — costing search-style candidates (one dirty stage
  per candidate) with the per-stage cost cache warm vs the cold path
  that re-costs every stage (the pre-refactor behaviour), on a 48- and
  a 1000-layer GPT chain.
* **scalar vs batched** — the same warm methodology through
  ``estimate_batch``: candidates submitted as one array-assembled
  batch instead of a Python loop.  Rates are best-of-N over
  interleaved repeats (standard timeit practice — on a contended box
  the max rate is the real cost, the rest is scheduler noise), and the
  batched/scalar *ratio* is the machine-independent number the CI
  regression gate tracks.
* **telemetry off vs on** — the same warm path with the bus inactive
  (no sinks: the production search default) vs actively emitting
  per-estimate events into a ring buffer.  The inactive path is the
  zero-overhead contract of ``repro.telemetry``.
* **search wall-clock** — ``search_all_stage_counts`` serial vs the
  persistent worker pool at 2 and 4 workers, which must return the
  identical best configuration.

Results are emitted to ``benchmarks/results/BENCH_perfmodel.json`` so
later PRs can track the estimator's perf trajectory.
"""

import json
import os
import time

from repro.cluster import paper_cluster
from repro.core import search_all_stage_counts
from repro.ir.models import build_model
from repro.parallel import ParallelConfig, balanced_config
from repro.perfmodel import PerfModel
from repro.profiling import SimulatedProfiler
from repro.telemetry import RingBufferSink, TelemetryBus, using_bus

from common import RESULTS_DIR, emit, print_header, print_table

BENCH_JSON = os.path.join(RESULTS_DIR, "BENCH_perfmodel.json")

#: Candidate estimates per timing run (distinct configs, so every one
#: misses the whole-config cache like fresh search candidates do).
NUM_CANDIDATES = 200

#: Interleaved repeats for the best-of-N scalar-vs-batch comparison.
BATCH_REPEATS = 5

#: Allowed regression of the batched/scalar throughput ratio relative
#: to the committed baseline before the bench (and CI) fails.  The
#: ratio is machine-independent — both rates come from the same run on
#: the same box — so 0.8 means "no more than 20% slower relative to
#: the scalar path", not a wall-clock bound.
BATCH_REGRESSION_FLOOR = 0.8


def _setup(model_name, num_gpus=8, stages=8):
    graph = build_model(model_name)
    cluster = paper_cluster(num_gpus)
    database = SimulatedProfiler(cluster, seed=0).profile(graph)
    base = balanced_config(graph, cluster, stages)
    return graph, cluster, database, base


def _candidates(base, count):
    """Distinct search-style candidates: one dirty stage each."""
    variants = []
    num_stages = base.num_stages
    for i in range(count):
        stage_index = i % num_stages
        child = base.mutated_copy([stage_index])
        stage = child.stages[stage_index]
        stage.recompute[(i // num_stages) % stage.num_ops] = True
        variants.append(child)
    return variants

def _distinct_candidates(base, count):
    """Distinct candidates beyond the ``_candidates`` cycle length.

    The dirty stage's recompute mask is the binary representation of
    the variant index, so candidates stay pairwise distinct for any
    ``count`` the bench can afford — repeated signatures would hit the
    whole-config cache and silently inflate the measured rate.
    """
    variants = []
    num_stages = base.num_stages
    for i in range(count):
        stage_index = i % num_stages
        child = base.mutated_copy([stage_index])
        stage = child.stages[stage_index]
        bits = i // num_stages + 1
        op = 0
        while bits:
            if bits & 1:
                stage.recompute[op] = True
            bits >>= 1
            op += 1
        variants.append(child)
    return variants


def _combination_candidates(base, count, patterns_per_stage=4):
    """Steady-state candidates: fresh combinations of cached stages.

    Each candidate recombines per-stage settings drawn from a small
    pool (``patterns_per_stage`` recompute variants per stage, indexed
    by the base-``patterns_per_stage`` digits of the candidate
    number), so configurations stay pairwise distinct — every one
    misses the whole-config cache — while after a short warmup every
    *per-stage* cost is already cached.  This is the state a search
    reaches after its first few candidates: neighborhoods recombine
    stage settings far more often than they invent new ones, which is
    the incremental-reuse observation the two-level cache is built on.
    """
    num_stages = base.num_stages
    variant_stages = []
    for stage in base.stages:
        options = [stage]
        for pattern in range(1, patterns_per_stage):
            clone = stage.clone()
            clone.recompute[(pattern - 1) % clone.num_ops] = True
            options.append(clone)
        variant_stages.append(options)
    configs = []
    for i in range(count):
        digits, stages = i + 1, []
        for s in range(num_stages):
            stages.append(variant_stages[s][digits % patterns_per_stage])
            digits //= patterns_per_stage
        configs.append(
            ParallelConfig(
                stages=stages, microbatch_size=base.microbatch_size
            )
        )
    return configs


def _rate(model, variants):
    started = time.perf_counter()
    for config in variants:
        model.estimate(config)
    elapsed = time.perf_counter() - started
    return len(variants) / elapsed, elapsed


def _batch_rate(model, variants):
    started = time.perf_counter()
    model.estimate_batch(variants)
    elapsed = time.perf_counter() - started
    return len(variants) / elapsed, elapsed


def _estimate_rates(model_name):
    graph, cluster, database, base = _setup(model_name)
    variants = _candidates(base, NUM_CANDIDATES)

    cold_model = PerfModel(graph, cluster, database, stage_cache_size=0)
    cold_rate, cold_s = _rate(cold_model, variants)

    warm_model = PerfModel(graph, cluster, database)
    warm_model.estimate(base)  # prime the stage cache
    warm_rate, warm_s = _rate(warm_model, variants)
    info = warm_model.cache_info()
    return {
        "model": model_name,
        "num_ops": graph.num_ops,
        "candidates": NUM_CANDIDATES,
        "cold_estimates_per_s": cold_rate,
        "warm_estimates_per_s": warm_rate,
        "speedup": warm_rate / cold_rate,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "stage_cache_hits": info["num_stage_hits"],
        "stage_cache_misses": info["num_stage_costs"],
    }


def test_estimates_per_second():
    """Warm stage cache must beat full re-costing, >=3x at 1000 layers."""
    print_header("PerfModel estimates/sec: cold vs warm stage cache")
    rows, results = [], []
    for model_name in ("gpt-48l", "gpt-1000l"):
        out = _estimate_rates(model_name)
        results.append(out)
        rows.append([
            model_name,
            out["num_ops"],
            f"{out['cold_estimates_per_s']:.0f}",
            f"{out['warm_estimates_per_s']:.0f}",
            f"{out['speedup']:.1f}x",
        ])
    print_table(
        ["model", "ops", "cold est/s", "warm est/s", "speedup"], rows
    )
    _merge_json({"estimates": results})
    deep = next(r for r in results if r["model"] == "gpt-1000l")
    assert deep["speedup"] >= 3.0, deep
    for out in results:
        assert out["warm_estimates_per_s"] > out["cold_estimates_per_s"]


def _committed_batch_baseline():
    """The ``batch`` section of the checked-in JSON, if any.

    Read *before* ``_merge_json`` overwrites it, so the regression gate
    compares against the committed baseline, not this run.
    """
    if not os.path.exists(BENCH_JSON):
        return {}
    with open(BENCH_JSON) as handle:
        payload = json.load(handle)
    return {r["model"]: r for r in payload.get("batch", [])}


def test_batch_estimates_per_second():
    """``estimate_batch`` >= 10x the warm scalar rate on gpt-48l.

    Two candidate regimes, both measured scalar *and* batched so every
    number has a like-for-like partner:

    * **fresh** — the established warm-column methodology: each
      candidate dirties one stage, so every estimate pays one uncached
      stage costing plus warm hits for the rest.  Here stage costing
      dominates both paths and batching buys only its overhead back.
    * **steady** — ``_combination_candidates``: distinct whole-config
      misses whose per-stage costs are all cached, the state a search
      ranking thousands of neighbors sits in.  This is the regime the
      batched kernel targets, and where it shows its full margin.

    Rates are best-of-N over interleaved repeats with fresh distinct
    candidates per repeat (every estimate misses the whole-config
    cache).  The headline ``batch_speedup`` is steady batched over the
    established warm scalar column; the committed-baseline gate
    compares that *ratio* (machine-independent — both rates come from
    the same run), failing on a >20% relative regression.
    """
    print_header(
        f"PerfModel estimates/sec: scalar vs batched (best of {BATCH_REPEATS})"
    )
    baseline = _committed_batch_baseline()
    warmup = 100
    rows, results = [], []
    for model_name in ("gpt-48l", "gpt-1000l"):
        graph, cluster, database, base = _setup(model_name)
        fresh_pool = _distinct_candidates(
            base, 2 * BATCH_REPEATS * NUM_CANDIDATES
        )
        steady_pool = _combination_candidates(
            base, warmup + 2 * BATCH_REPEATS * NUM_CANDIDATES
        )
        models = [PerfModel(graph, cluster, database) for _ in range(4)]
        scalar_warm, batch_fresh, scalar_steady, batch_steady = models
        for model in models:
            model.estimate(base)  # prime the base stage costs
        for config in steady_pool[:warmup]:  # fill the stage-cost pool
            scalar_steady.estimate(config)
            batch_steady.estimate(config)
        best = [0.0, 0.0, 0.0, 0.0]
        for repeat in range(BATCH_REPEATS):
            lo = 2 * repeat * NUM_CANDIDATES
            hi = lo + NUM_CANDIDATES
            columns = (
                (scalar_warm, _rate, fresh_pool[lo:hi]),
                (batch_fresh, _batch_rate, fresh_pool[hi:hi + NUM_CANDIDATES]),
                (scalar_steady, _rate, steady_pool[warmup + lo:warmup + hi]),
                (
                    batch_steady,
                    _batch_rate,
                    steady_pool[warmup + hi:warmup + hi + NUM_CANDIDATES],
                ),
            )
            for column, (model, runner, chunk) in enumerate(columns):
                best[column] = max(best[column], runner(model, chunk)[0])
        out = {
            "model": model_name,
            "num_ops": graph.num_ops,
            "candidates": NUM_CANDIDATES,
            "repeats": BATCH_REPEATS,
            "scalar_warm_estimates_per_s": best[0],
            "batch_fresh_estimates_per_s": best[1],
            "scalar_steady_estimates_per_s": best[2],
            "batch_steady_estimates_per_s": best[3],
            "fresh_speedup": best[1] / best[0],
            "steady_speedup": best[3] / best[2],
            "batch_speedup": best[3] / best[0],
        }
        results.append(out)
        rows.append([
            model_name,
            graph.num_ops,
            f"{best[0]:.0f}",
            f"{best[1]:.0f}",
            f"{best[2]:.0f}",
            f"{best[3]:.0f}",
            f"{out['batch_speedup']:.1f}x",
        ])
    print_table(
        [
            "model", "ops", "scalar warm", "batch fresh",
            "scalar steady", "batch steady", "speedup",
        ],
        rows,
    )
    _merge_json({"batch": results})
    for out in results:
        # In the fresh regime stage costing dominates both paths, so on
        # very deep models batching is break-even (gpt-1000l sits near
        # 1.0x); the contract is only "never meaningfully slower".
        assert out["fresh_speedup"] >= BATCH_REGRESSION_FLOOR, out
        assert (
            out["batch_steady_estimates_per_s"]
            > out["scalar_steady_estimates_per_s"]
        )
        committed = baseline.get(out["model"])
        if committed:
            floor = BATCH_REGRESSION_FLOOR * committed["batch_speedup"]
            assert out["batch_speedup"] >= floor, (
                f"{out['model']}: batched/scalar ratio "
                f"{out['batch_speedup']:.2f} regressed >20% below the "
                f"committed {committed['batch_speedup']:.2f}"
            )
    flat = next(r for r in results if r["model"] == "gpt-48l")
    assert flat["batch_speedup"] >= 10.0, flat


def test_telemetry_overhead():
    """Inactive-bus estimates must track the plain warm rate (<=5%).

    Off and on batches interleave so machine drift hits both modes
    equally; the recorded overhead is what attaching a sink costs, and
    the assertion guards the contract that *not* attaching one costs
    nothing the warm-cache rate can feel.
    """
    print_header("PerfModel estimates/sec: telemetry off vs on")
    graph, cluster, database, base = _setup("gpt-48l")
    batch = 20
    num_batches = NUM_CANDIDATES // batch
    variants = _candidates(base, 3 * NUM_CANDIDATES)

    # base = the untouched process-default bus; off = an explicitly
    # installed sinkless bus (the same inactive fast path); on = a bus
    # actively recording every estimate into a ring buffer.
    models = [
        PerfModel(graph, cluster, database) for _ in range(3)
    ]
    for model in models:
        model.estimate(base)
    off_bus = TelemetryBus()
    on_bus = TelemetryBus()
    ring = on_bus.add_sink(RingBufferSink())
    seconds = [0.0, 0.0, 0.0]
    for i in range(num_batches):
        chunk = variants[3 * i * batch:3 * (i + 1) * batch]
        seconds[0] += _rate(models[0], chunk[:batch])[1]
        with using_bus(off_bus):
            seconds[1] += _rate(models[1], chunk[batch:2 * batch])[1]
        with using_bus(on_bus):
            seconds[2] += _rate(models[2], chunk[2 * batch:])[1]
    base_rate, off_rate, on_rate = (
        NUM_CANDIDATES / s for s in seconds
    )
    print_table(
        ["mode", "est/s", "events"],
        [
            ["baseline", f"{base_rate:.0f}", "0"],
            ["telemetry off", f"{off_rate:.0f}", "0"],
            ["telemetry on", f"{on_rate:.0f}", str(len(ring))],
        ],
    )
    emit(
        f"inactive-bus overhead: {seconds[1] / seconds[0] - 1.0:+.1%}, "
        f"active-sink overhead: {seconds[2] / seconds[0] - 1.0:+.1%}"
    )
    _merge_json({
        "telemetry": {
            "model": "gpt-48l",
            "candidates": NUM_CANDIDATES,
            "baseline_estimates_per_s": base_rate,
            "off_estimates_per_s": off_rate,
            "on_estimates_per_s": on_rate,
            "inactive_overhead": seconds[1] / seconds[0] - 1.0,
            "active_overhead": seconds[2] / seconds[0] - 1.0,
        }
    })
    assert len(ring) > 0  # the on-mode really emitted
    # disabled telemetry must stay within noise of the plain warm rate
    assert off_rate >= 0.95 * base_rate, (off_rate, base_rate)


def _usable_cores():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_search_serial_vs_workers():
    """The persistent pool beats serial wall-clock, identical answer.

    The wall-clock comparison needs real cores: on a single-core
    machine process fan-out can only add scheduling overhead, so there
    the bench records the timings at every worker count (and the core
    count, so the JSON is interpretable) but only enforces result
    identity.
    """
    print_header("search_all_stage_counts: serial vs worker pool")
    graph = build_model("gpt3-350m")
    cluster = paper_cluster(8)
    database = SimulatedProfiler(cluster, seed=0).profile(graph)
    budget = {"max_iterations": 10}
    outcomes = {}
    for workers in (1, 2, 4):
        model = PerfModel(graph, cluster, database)
        outcomes[workers] = search_all_stage_counts(
            graph, cluster, model,
            budget_per_count=budget, workers=workers,
        )
    serial = outcomes[1]
    cores = _usable_cores()
    rows = [
        [
            "serial" if workers == 1 else f"workers={workers}",
            f"{outcome.wall_seconds:.2f}s",
            f"{serial.wall_seconds / outcome.wall_seconds:.2f}x",
            f"{outcome.best.best_objective:.4f}",
        ]
        for workers, outcome in sorted(outcomes.items())
    ]
    print_table(
        ["driver", "wall-clock", "speedup", "best objective"], rows
    )
    emit(
        f"pool speedup at 4 workers: "
        f"{serial.wall_seconds / outcomes[4].wall_seconds:.2f}x "
        f"on {cores} usable core(s)"
    )
    _merge_json({
        "search": {
            "model": "gpt3-350m",
            "gpus": 8,
            "stage_counts": [r.num_stages for r in serial.runs],
            "iterations_per_count": budget["max_iterations"],
            "usable_cores": cores,
            "serial_wall_seconds": serial.wall_seconds,
            "workers2_wall_seconds": outcomes[2].wall_seconds,
            "workers4_wall_seconds": outcomes[4].wall_seconds,
            "speedup_workers2": (
                serial.wall_seconds / outcomes[2].wall_seconds
            ),
            "speedup_workers4": (
                serial.wall_seconds / outcomes[4].wall_seconds
            ),
            "best_identical": all(
                outcome.best.best_config.signature()
                == serial.best.best_config.signature()
                for outcome in outcomes.values()
            ),
        }
    })
    for outcome in outcomes.values():
        assert (
            outcome.best.best_config.signature()
            == serial.best.best_config.signature()
        )
        assert outcome.best.best_objective == serial.best.best_objective
    if cores >= 2:
        assert outcomes[4].wall_seconds < serial.wall_seconds


def _merge_json(fragment):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            payload = json.load(handle)
    payload.update(fragment)
    with open(BENCH_JSON, "w") as handle:
        json.dump(payload, handle, indent=2)
    emit(f"(written to {BENCH_JSON})")
