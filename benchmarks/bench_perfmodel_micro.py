"""Microbenchmark: estimator throughput and the multiprocess driver.

Quantifies the perf claims of the incremental-estimation and telemetry
work:

* **estimates/sec** — costing search-style candidates (one dirty stage
  per candidate) with the per-stage cost cache warm vs the cold path
  that re-costs every stage (the pre-refactor behaviour), on a 48- and
  a 1000-layer GPT chain.
* **telemetry off vs on** — the same warm path with the bus inactive
  (no sinks: the production search default) vs actively emitting
  per-estimate events into a ring buffer.  The inactive path is the
  zero-overhead contract of ``repro.telemetry``.
* **search wall-clock** — ``search_all_stage_counts`` serial vs a
  4-process ``ProcessPoolExecutor`` fan-out, which must return the
  identical best configuration.

Results are emitted to ``benchmarks/results/BENCH_perfmodel.json`` so
later PRs can track the estimator's perf trajectory.
"""

import json
import os
import time

from repro.cluster import paper_cluster
from repro.core import search_all_stage_counts
from repro.ir.models import build_model
from repro.parallel import balanced_config
from repro.perfmodel import PerfModel
from repro.profiling import SimulatedProfiler
from repro.telemetry import RingBufferSink, TelemetryBus, using_bus

from common import RESULTS_DIR, emit, print_header, print_table

BENCH_JSON = os.path.join(RESULTS_DIR, "BENCH_perfmodel.json")

#: Candidate estimates per timing run (distinct configs, so every one
#: misses the whole-config cache like fresh search candidates do).
NUM_CANDIDATES = 200


def _setup(model_name, num_gpus=8, stages=8):
    graph = build_model(model_name)
    cluster = paper_cluster(num_gpus)
    database = SimulatedProfiler(cluster, seed=0).profile(graph)
    base = balanced_config(graph, cluster, stages)
    return graph, cluster, database, base


def _candidates(base, count):
    """Distinct search-style candidates: one dirty stage each."""
    variants = []
    num_stages = base.num_stages
    for i in range(count):
        stage_index = i % num_stages
        child = base.mutated_copy([stage_index])
        stage = child.stages[stage_index]
        stage.recompute[(i // num_stages) % stage.num_ops] = True
        variants.append(child)
    return variants

def _rate(model, variants):
    started = time.perf_counter()
    for config in variants:
        model.estimate(config)
    elapsed = time.perf_counter() - started
    return len(variants) / elapsed, elapsed


def _estimate_rates(model_name):
    graph, cluster, database, base = _setup(model_name)
    variants = _candidates(base, NUM_CANDIDATES)

    cold_model = PerfModel(graph, cluster, database, stage_cache_size=0)
    cold_rate, cold_s = _rate(cold_model, variants)

    warm_model = PerfModel(graph, cluster, database)
    warm_model.estimate(base)  # prime the stage cache
    warm_rate, warm_s = _rate(warm_model, variants)
    info = warm_model.cache_info()
    return {
        "model": model_name,
        "num_ops": graph.num_ops,
        "candidates": NUM_CANDIDATES,
        "cold_estimates_per_s": cold_rate,
        "warm_estimates_per_s": warm_rate,
        "speedup": warm_rate / cold_rate,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "stage_cache_hits": info["num_stage_hits"],
        "stage_cache_misses": info["num_stage_costs"],
    }


def test_estimates_per_second():
    """Warm stage cache must beat full re-costing, >=3x at 1000 layers."""
    print_header("PerfModel estimates/sec: cold vs warm stage cache")
    rows, results = [], []
    for model_name in ("gpt-48l", "gpt-1000l"):
        out = _estimate_rates(model_name)
        results.append(out)
        rows.append([
            model_name,
            out["num_ops"],
            f"{out['cold_estimates_per_s']:.0f}",
            f"{out['warm_estimates_per_s']:.0f}",
            f"{out['speedup']:.1f}x",
        ])
    print_table(
        ["model", "ops", "cold est/s", "warm est/s", "speedup"], rows
    )
    _merge_json({"estimates": results})
    deep = next(r for r in results if r["model"] == "gpt-1000l")
    assert deep["speedup"] >= 3.0, deep
    for out in results:
        assert out["warm_estimates_per_s"] > out["cold_estimates_per_s"]


def test_telemetry_overhead():
    """Inactive-bus estimates must track the plain warm rate (<=5%).

    Off and on batches interleave so machine drift hits both modes
    equally; the recorded overhead is what attaching a sink costs, and
    the assertion guards the contract that *not* attaching one costs
    nothing the warm-cache rate can feel.
    """
    print_header("PerfModel estimates/sec: telemetry off vs on")
    graph, cluster, database, base = _setup("gpt-48l")
    batch = 20
    num_batches = NUM_CANDIDATES // batch
    variants = _candidates(base, 3 * NUM_CANDIDATES)

    # base = the untouched process-default bus; off = an explicitly
    # installed sinkless bus (the same inactive fast path); on = a bus
    # actively recording every estimate into a ring buffer.
    models = [
        PerfModel(graph, cluster, database) for _ in range(3)
    ]
    for model in models:
        model.estimate(base)
    off_bus = TelemetryBus()
    on_bus = TelemetryBus()
    ring = on_bus.add_sink(RingBufferSink())
    seconds = [0.0, 0.0, 0.0]
    for i in range(num_batches):
        chunk = variants[3 * i * batch:3 * (i + 1) * batch]
        seconds[0] += _rate(models[0], chunk[:batch])[1]
        with using_bus(off_bus):
            seconds[1] += _rate(models[1], chunk[batch:2 * batch])[1]
        with using_bus(on_bus):
            seconds[2] += _rate(models[2], chunk[2 * batch:])[1]
    base_rate, off_rate, on_rate = (
        NUM_CANDIDATES / s for s in seconds
    )
    print_table(
        ["mode", "est/s", "events"],
        [
            ["baseline", f"{base_rate:.0f}", "0"],
            ["telemetry off", f"{off_rate:.0f}", "0"],
            ["telemetry on", f"{on_rate:.0f}", str(len(ring))],
        ],
    )
    emit(
        f"inactive-bus overhead: {seconds[1] / seconds[0] - 1.0:+.1%}, "
        f"active-sink overhead: {seconds[2] / seconds[0] - 1.0:+.1%}"
    )
    _merge_json({
        "telemetry": {
            "model": "gpt-48l",
            "candidates": NUM_CANDIDATES,
            "baseline_estimates_per_s": base_rate,
            "off_estimates_per_s": off_rate,
            "on_estimates_per_s": on_rate,
            "inactive_overhead": seconds[1] / seconds[0] - 1.0,
            "active_overhead": seconds[2] / seconds[0] - 1.0,
        }
    })
    assert len(ring) > 0  # the on-mode really emitted
    # disabled telemetry must stay within noise of the plain warm rate
    assert off_rate >= 0.95 * base_rate, (off_rate, base_rate)


def _usable_cores():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_search_serial_vs_workers():
    """--workers 4 beats serial wall-clock with an identical answer.

    The wall-clock comparison needs real cores: on a single-core
    machine process fan-out can only add scheduling overhead, so there
    the bench records both timings (and the core count, so the JSON is
    interpretable) but only enforces result identity.
    """
    print_header("search_all_stage_counts: serial vs --workers 4")
    graph = build_model("gpt3-350m")
    cluster = paper_cluster(8)
    database = SimulatedProfiler(cluster, seed=0).profile(graph)
    budget = {"max_iterations": 10}
    outcomes = {}
    for workers in (1, 4):
        model = PerfModel(graph, cluster, database)
        outcomes[workers] = search_all_stage_counts(
            graph, cluster, model,
            budget_per_count=budget, workers=workers,
        )
    serial, parallel = outcomes[1], outcomes[4]
    cores = _usable_cores()
    rows = [
        ["serial", f"{serial.wall_seconds:.2f}s",
         f"{serial.best.best_objective:.4f}"],
        ["workers=4", f"{parallel.wall_seconds:.2f}s",
         f"{parallel.best.best_objective:.4f}"],
    ]
    print_table(["driver", "wall-clock", "best objective"], rows)
    emit(
        f"speedup: {serial.wall_seconds / parallel.wall_seconds:.2f}x "
        f"on {cores} usable core(s)"
    )
    _merge_json({
        "search": {
            "model": "gpt3-350m",
            "gpus": 8,
            "stage_counts": [r.num_stages for r in serial.runs],
            "iterations_per_count": budget["max_iterations"],
            "usable_cores": cores,
            "serial_wall_seconds": serial.wall_seconds,
            "workers4_wall_seconds": parallel.wall_seconds,
            "speedup": serial.wall_seconds / parallel.wall_seconds,
            "best_identical": (
                serial.best.best_config.signature()
                == parallel.best.best_config.signature()
            ),
        }
    })
    assert (
        serial.best.best_config.signature()
        == parallel.best.best_config.signature()
    )
    assert serial.best.best_objective == parallel.best.best_objective
    if cores >= 2:
        assert parallel.wall_seconds < serial.wall_seconds


def _merge_json(fragment):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {}
    if os.path.exists(BENCH_JSON):
        with open(BENCH_JSON) as handle:
            payload = json.load(handle)
    payload.update(fragment)
    with open(BENCH_JSON, "w") as handle:
        json.dump(payload, handle, indent=2)
    emit(f"(written to {BENCH_JSON})")
