"""Shared infrastructure for the benchmark harness.

Every figure/table of the paper's evaluation has one bench module; they
all pull cached model/cluster/search setups from here so expensive work
(profiling, comparisons) is done once per pytest session.

Scale control: ``REPRO_BENCH_SCALE=small`` (default) runs the 1-8 GPU
settings; ``REPRO_BENCH_SCALE=paper`` runs the full ladder up to 32
GPUs exactly as Table 2 / Figure 7 do.  Shapes (who wins, by roughly
what factor) are asserted at both scales; absolute numbers differ from
the paper because the substrate is a simulator (see DESIGN.md).
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, List, Tuple

from repro.analysis import ComparisonResult, compare_systems
from repro.cluster import paper_cluster
from repro.ir.models import build_model
from repro.perfmodel import PerfModel, build_perf_model
from repro.profiling import SimulatedProfiler
from repro.runtime import Executor

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small").lower()

#: GPU count per ladder position (Exp#1 uses 1/4/8/16/32).
LADDER_GPUS = [1, 4, 8, 16, 32]

_MODEL_LADDERS: Dict[str, List[str]] = {
    "gpt3": ["350m", "1.3b", "2.6b", "6.7b", "13b"],
    "t5": ["770m", "3b", "6b", "11b", "22b"],
    "wresnet": ["500m", "2b", "4b", "6.8b", "13b"],
}

#: How much of the ladder each scale covers.
_SCALE_POSITIONS = {"small": [0, 1, 2], "paper": [0, 1, 2, 3, 4]}

#: Aceso iteration budget per stage count at each scale.
ACESO_ITERATIONS = {"small": 15, "paper": 25}[
    SCALE if SCALE in ("small", "paper") else "small"
]


def ladder(model_family: str) -> List[Tuple[str, int]]:
    """(model_name, num_gpus) settings for this scale."""
    positions = _SCALE_POSITIONS.get(SCALE, _SCALE_POSITIONS["small"])
    sizes = _MODEL_LADDERS[model_family]
    return [
        (f"{model_family}-{sizes[i]}", LADDER_GPUS[i]) for i in positions
    ]


@lru_cache(maxsize=None)
def get_setup(model_name: str, num_gpus: int, seed: int = 0):
    """(graph, cluster, perf_model, executor), cached per session."""
    graph = build_model(model_name)
    cluster = paper_cluster(num_gpus)
    database = SimulatedProfiler(cluster, seed=seed).profile(graph)
    perf_model = PerfModel(graph, cluster, database)
    executor = Executor(graph, cluster, seed=seed)
    return graph, cluster, perf_model, executor


@lru_cache(maxsize=None)
def get_comparison(model_name: str, num_gpus: int) -> ComparisonResult:
    """Full three-system comparison, cached per session."""
    _, cluster, perf_model, _ = get_setup(model_name, num_gpus)
    return compare_systems(
        model_name,
        num_gpus,
        cluster=cluster,
        database=perf_model.database,
        aceso_iterations=ACESO_ITERATIONS,
    )


# ----------------------------------------------------------------------
# pretty printing — teed to stdout and benchmarks/results/<scale>.txt
# so the regenerated figure/table data survives pytest's capturing.
# ----------------------------------------------------------------------
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RESULTS_PATH = os.path.join(RESULTS_DIR, f"figures_{SCALE}.txt")


def emit(line: str = "") -> None:
    """Write one line to stdout and the persistent results file."""
    print(line)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(RESULTS_PATH, "a") as handle:
        handle.write(line + "\n")


def print_header(title: str) -> None:
    emit()
    emit("=" * 72)
    emit(title)
    emit("=" * 72)


def print_table(headers: List[str], rows: List[List[str]]) -> None:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    emit(line)
    emit("-" * len(line))
    for row in rows:
        emit("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def print_series(name: str, xs, ys, fmt: str = "{:.3g}") -> None:
    pairs = ", ".join(
        f"{x}:{fmt.format(y)}" for x, y in zip(xs, ys)
    )
    emit(f"{name}: {pairs}")
