"""Figure 11 (Exp#5a) — heuristic efficiency distributions.

Paper claims: across all search iterations, Heuristic-1 finds the right
bottleneck on the first attempt ~90% of the time (Fig. 11a), and 68% of
improving iterations need more than one hop (Fig. 11b) — i.e. the
multi-hop machinery earns its keep.
"""

from common import emit, get_setup, print_header, print_table

from repro.core import AcesoSearch, SearchBudget
from repro.parallel import balanced_config

SETTINGS = [
    ("gpt3-350m", 4, 2),
    ("gpt3-350m", 4, 4),
    ("gpt3-1.3b", 4, 2),
    ("gpt3-1.3b", 4, 4),
    ("wresnet-500m", 4, 2),
    ("t5-770m", 4, 4),
]


def _merged_traces():
    bottleneck_hist = {}
    hop_hist = {}
    improving = 0
    for model_name, gpus, stages in SETTINGS:
        graph, cluster, perf_model, _ = get_setup(model_name, gpus)
        search = AcesoSearch(graph, cluster, perf_model)
        init = balanced_config(graph, cluster, stages)
        result = search.run(init, SearchBudget(max_iterations=15))
        for key, count in result.trace.bottleneck_histogram().items():
            bottleneck_hist[key] = bottleneck_hist.get(key, 0) + count
        for key, count in result.trace.hop_histogram().items():
            hop_hist[key] = hop_hist.get(key, 0) + count
        improving += sum(result.trace.bottleneck_histogram().values())
    return bottleneck_hist, hop_hist, improving


def test_fig11_heuristic_stats(benchmark):
    bottleneck_hist, hop_hist, improving = benchmark.pedantic(
        _merged_traces, rounds=1, iterations=1
    )

    print_header("Figure 11: heuristic efficiency distributions")
    emit(f"improving iterations observed: {improving}")
    print_table(
        ["bottlenecks tried", "iterations", "share"],
        [
            [k, v, f"{100 * v / improving:.0f}%"]
            for k, v in sorted(bottleneck_hist.items())
        ],
    )
    print_table(
        ["hops used", "iterations", "share"],
        [
            [k, v, f"{100 * v / improving:.0f}%"]
            for k, v in sorted(hop_hist.items())
        ],
    )
    first_try = bottleneck_hist.get(1, 0) / improving
    multi_hop = sum(v for k, v in hop_hist.items() if k > 1) / improving
    emit(f"first-try bottleneck rate: {100 * first_try:.0f}% (paper: 90%)")
    emit(f"multi-hop share: {100 * multi_hop:.0f}% (paper: 68%)")

    assert improving >= 20
    # Shape: the first bottleneck usually suffices...
    assert first_try > 0.6
    # ...and a large share of improvements genuinely need >1 hop.
    assert multi_hop > 0.3
