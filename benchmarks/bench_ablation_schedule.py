"""Schedule ablation: 1F1B (the paper's setting) vs GPipe.

Aceso plans against 1F1B (Eq. 1/2).  Deploying the same plans under
GPipe shows why: holding every microbatch's activations multiplies
memory (often into OOM), for no throughput gain.
"""

from common import emit, get_setup, print_header, print_table

from repro.core import search_all_stage_counts
from repro.runtime import GPIPE, Executor

SETTINGS = [("gpt3-1.3b", 4), ("gpt3-2.6b", 8)]


def _run_setting(model_name, gpus):
    graph, cluster, perf_model, executor_1f1b = get_setup(model_name, gpus)
    multi = search_all_stage_counts(
        graph, cluster, perf_model,
        budget_per_count={"max_iterations": 10},
    )
    plan = multi.best.best_config
    gpipe_executor = Executor(
        graph, cluster, seed=0, schedule_style=GPIPE
    )
    f1b = executor_1f1b.run(plan)
    gpipe = gpipe_executor.run(plan)
    return {
        "setting": f"{model_name}@{gpus}gpu",
        "stages": plan.num_stages,
        "f1b_time": f1b.iteration_time,
        "gpipe_time": gpipe.iteration_time,
        "f1b_mem": f1b.max_memory,
        "gpipe_mem": gpipe.max_memory,
        "f1b_oom": f1b.oom,
        "gpipe_oom": gpipe.oom,
    }


def test_ablation_schedule(benchmark):
    results = benchmark.pedantic(
        lambda: [_run_setting(*s) for s in SETTINGS], rounds=1, iterations=1
    )

    print_header("Ablation: 1F1B vs GPipe for the searched plans")
    print_table(
        ["setting", "stages", "1F1B time", "GPipe time",
         "1F1B mem", "GPipe mem", "GPipe OOM"],
        [
            [
                r["setting"], r["stages"],
                f"{r['f1b_time']:.1f}s", f"{r['gpipe_time']:.1f}s",
                f"{r['f1b_mem'] / 2**30:.1f}GB",
                f"{r['gpipe_mem'] / 2**30:.1f}GB",
                r["gpipe_oom"],
            ]
            for r in results
        ],
    )
    for r in results:
        # 1F1B plans always deploy; GPipe needs strictly more memory
        # whenever the plan pipelines, and is never faster.
        assert not r["f1b_oom"], r
        if r["stages"] > 1:
            assert r["gpipe_mem"] > r["f1b_mem"], r
        assert r["gpipe_time"] >= r["f1b_time"] * 0.99, r
    emit(
        "GPipe retains every microbatch's activations; 1F1B caps them "
        "at (p - i) — the term Eq. 1 charges."
    )
