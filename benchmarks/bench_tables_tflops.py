"""Tables 3-5 (Appendix A) — effective TFLOPS per GPU.

Paper reference points (V100 testbed): GPT-3 30-66 TFLOPS/GPU with
Aceso leading on the larger sizes; Wide-ResNet an order of magnitude
lower (FP32, memory-bound convolutions) with Aceso leading mid-ladder;
T5 with Aceso well above Megatron-LM from 3B up.
"""

import pytest

from common import get_comparison, ladder, print_header, print_table

TABLES = {
    "gpt3": ("Table 3: GPT-3 TFLOPS per GPU", ["megatron", "alpa", "aceso"]),
    "wresnet": (
        "Table 4: Wide-ResNet TFLOPS per GPU",
        ["megatron", "alpa", "aceso"],
    ),
    "t5": ("Table 5: T5 TFLOPS per GPU", ["megatron", "aceso"]),
}


@pytest.mark.parametrize("family", list(TABLES))
def test_tables_tflops(benchmark, family):
    title, systems = TABLES[family]
    settings = ladder(family)

    def collect():
        table = {}
        for model_name, gpus in settings:
            comparison = get_comparison(model_name, gpus)
            table[f"{model_name}@{gpus}"] = {
                s: comparison.outcomes[s].tflops for s in systems
            }
        return table

    table = benchmark.pedantic(collect, rounds=1, iterations=1)

    print_header(title)
    rows = [
        [setting] + [f"{values[s]:.2f}" for s in systems]
        for setting, values in table.items()
    ]
    print_table(["setting"] + systems, rows)

    for setting, values in table.items():
        # Sanity: positive, below the device's sustained ceiling.
        for system in systems:
            assert 0 < values[system] < 80, (setting, system, values)
        # Aceso never below the best baseline by more than noise.
        baseline_best = max(values[s] for s in systems if s != "aceso")
        assert values["aceso"] >= baseline_best * 0.97, (setting, values)
    if family == "wresnet":
        # FP32 convolutions: far lower than GPT's fp16 tensor cores.
        assert max(v["aceso"] for v in table.values()) < 25
