"""Figure 13 (Exp#6) — convergence under different MaxHops.

Paper claims: very small MaxHops can get stuck sub-optimal (the search
cannot express multi-step trades), very large MaxHops wastes the budget
inside deep iterations; a moderate value (7) is a good default.
"""

from common import get_setup, print_header, print_table

from repro.core import AcesoSearch, AcesoSearchOptions, SearchBudget
from repro.parallel import balanced_config

SETTINGS = [("gpt3-6.7b", 8, 4), ("gpt3-6.7b", 8, 8)]
MAX_HOPS = [1, 3, 7, 11]
BUDGET = {"max_estimates": 3_000}


def _run_setting(model_name, gpus, stages):
    graph, cluster, perf_model, _ = get_setup(model_name, gpus)
    init = balanced_config(graph, cluster, stages)
    finals = {}
    for hops in MAX_HOPS:
        options = AcesoSearchOptions(max_hops=hops)
        search = AcesoSearch(graph, cluster, perf_model, options=options)
        result = search.run(init, SearchBudget(**BUDGET))
        finals[hops] = result.best_objective
    return finals


def test_fig13_maxhops(benchmark):
    results = benchmark.pedantic(
        lambda: [_run_setting(*s) for s in SETTINGS], rounds=1, iterations=1
    )

    print_header("Figure 13: best found iteration time per MaxHops")
    rows = [
        [f"{m}@{g}gpu"] + [f"{finals[h]:.3f}" for h in MAX_HOPS]
        for (m, g, _), finals in zip(SETTINGS, results)
    ]
    print_table(["setting"] + [f"MaxHops={h}" for h in MAX_HOPS], rows)

    for finals in results:
        default = finals[7]
        # The default never loses badly to any other depth...
        assert all(default <= v * 1.10 for v in finals.values()), finals
        # ...and a depth above 1 is never *required* to beat depth 7 by
        # a large margin (the moderate choice is safe).
        assert default <= finals[1] * 1.001 or finals[1] <= default * 1.10
