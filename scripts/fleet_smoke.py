#!/usr/bin/env python
"""CI smoke test for the planner fleet (`repro-fleet`).

Two stages:

1. **Chaos replay** (in-process): a pinned-seed kill/restart schedule
   over a 3-replica fleet under synthetic traffic.  Asserts *zero lost
   requests* — every submit gets a terminal answer — and that every
   non-degraded plan digest is bit-identical to a fresh single-daemon
   oracle answering the same fingerprints.
2. **HTTP front-end**: boots `repro-fleet` as a real subprocess
   (2 replicas), fires plan requests (including a same-fingerprint
   pair for the shared-cache tier), checks /healthz and /invalidate,
   SIGTERMs it, then lints the run log (fleet.* cross-event
   invariants, ACE410/ACE411) and the `*.fleet.json` state artifact
   (ACE401-403) with the repo's own linter.

Run from the repository root: ``PYTHONPATH=src python scripts/fleet_smoke.py``
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

SMOKE_DIR = "smoke-fleet"
CHAOS_SEED = 2024
CHAOS_REQUESTS = 18
CHAOS_REPLICAS = 3

FLEET_REQUESTS = [
    {"model": "gpt-2l", "gpus": 4, "stage_counts": [1, 2],
     "iterations": 3},
    # Same fingerprint: must come back from the shared cache tier.
    {"model": "gpt-2l", "gpus": 4, "stage_counts": [1, 2],
     "iterations": 3},
    {"model": "gpt-4l", "gpus": 4, "stage_counts": [1, 2],
     "iterations": 2},
    # Admission lint must reject this through the fleet unchanged.
    {"model": "no-such-model", "gpus": 4},
]


def post(port, path, payload, timeout=180):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def chaos_stage(problems):
    from repro.ioutil import write_json_atomic
    from repro.service import (
        PlanRequest,
        run_chaos,
        seeded_schedule,
        synthetic_planner,
    )

    requests = [
        PlanRequest(
            model=f"chaos-{i % 5}",
            gpus=4,
            iterations=2,
            seed=i % 3,
        )
        for i in range(CHAOS_REQUESTS)
    ]
    names = [f"replica-{i}" for i in range(CHAOS_REPLICAS)]
    events = seeded_schedule(
        seed=CHAOS_SEED, requests=len(requests), replicas=names, kills=2
    )
    print("chaos schedule: " + ", ".join(
        f"{e.kind} {e.replica}@{e.after_request}" for e in events
    ))
    report = run_chaos(
        requests,
        events,
        replicas=CHAOS_REPLICAS,
        planner=synthetic_planner(0.01),
        state_root=os.path.join(SMOKE_DIR, "chaos"),
        daemon_kwargs={"workers": 2, "queue_limit": 16},
    )
    write_json_atomic(
        os.path.join(SMOKE_DIR, "chaos-report.json"), report.to_json()
    )
    print(
        f"chaos: {report.total} requests, {report.lost} lost, "
        f"{report.failovers} failovers, {report.degraded} degraded, "
        f"{report.digest_checked} digests checked, "
        f"{len(report.digest_mismatches)} mismatches"
    )
    if report.lost:
        problems.append(f"chaos run lost {report.lost} request(s)")
    if report.digest_mismatches:
        problems.append(
            "chaos plans diverged from the single-daemon oracle: "
            f"{report.digest_mismatches[:3]}"
        )
    if report.digest_checked == 0:
        problems.append("chaos run verified zero digests")


def fleet_stage(problems):
    run_log = os.path.join(SMOKE_DIR, "fleet-events.jsonl")
    state_dir = os.path.join(SMOKE_DIR, "state")
    process = subprocess.Popen(
        [
            sys.executable, "-c",
            "from repro.cli import fleet_main; "
            "raise SystemExit(fleet_main())",
            "--port", "0",
            "--replicas", "2",
            "--workers", "2",
            "--queue-limit", "4",
            "--state-dir", state_dir,
            "--run-log", run_log,
            "--quiet",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    banner = process.stdout.readline()
    assert "listening on" in banner, f"fleet did not start: {banner!r}"
    port = int(banner.rsplit(":", 1)[1])
    print(f"fleet up on port {port}")

    try:
        responses = []
        for index, payload in enumerate(FLEET_REQUESTS):
            code, body = post(port, "/plan", payload)
            responses.append((code, body))
            print(
                f"request {index}: http {code} -> {body.get('status')} "
                f"(replica={body.get('replica')}, "
                f"cached={body.get('cached')})"
            )
        ok_code, ok_body = responses[0]
        if ok_code != 200 or ok_body.get("status") != "served":
            problems.append(f"first request not served: {ok_body}")
        hit_code, hit_body = responses[1]
        if not hit_body.get("cached"):
            problems.append("repeat fingerprint missed the shared cache")
        if hit_body.get("plan") != ok_body.get("plan"):
            problems.append("shared-cache hit returned a different plan")
        reject_code, reject_body = responses[3]
        codes = [
            d.get("code") for d in reject_body.get("diagnostics", [])
        ]
        if reject_code != 400 or "ACE204" not in codes:
            problems.append(
                "unknown model not rejected by admission through the "
                f"fleet: http {reject_code}, codes {codes}"
            )

        health = json.loads(
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=10
            ).read()
        )
        print(f"fleet healthz: {health['status']}")
        if health["status"] != "healthy":
            problems.append(f"fleet unhealthy: {health['status']!r}")
        if len(health.get("replicas", {})) != 2:
            problems.append(f"healthz lists {health.get('replicas')}")

        _, dropped = post(port, "/invalidate", {})
        print(f"invalidate fan-out: {dropped}")
        if sorted(dropped.get("replicas", [])) != [
            "replica-0", "replica-1"
        ]:
            problems.append(
                f"invalidate did not reach both replicas: {dropped}"
            )
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=60)
        except subprocess.TimeoutExpired:
            process.kill()
            problems.append("fleet did not stop within 60s of SIGTERM")

    from repro.lint import lint_artifact_path, lint_run_log_file
    from repro.telemetry import validate_run_log

    events = validate_run_log(run_log)
    fleet_events = [e for e in events if e.name.startswith("fleet.")]
    print(
        f"run log: {len(events)} events "
        f"({len(fleet_events)} fleet.*), schema OK"
    )
    if not fleet_events:
        problems.append("run log has no fleet.* events")
    diagnostics = lint_run_log_file(run_log)
    if diagnostics:
        problems.append(
            "run log violates fleet invariants: "
            + "; ".join(d.render() for d in diagnostics)
        )

    state_path = os.path.join(state_dir, "fleet.fleet.json")
    if not os.path.exists(state_path):
        problems.append(f"fleet state artifact missing: {state_path}")
    else:
        diagnostics = lint_artifact_path(state_path)
        if diagnostics:
            problems.append(
                "fleet state artifact is invalid: "
                + "; ".join(d.render() for d in diagnostics)
            )
        else:
            print("fleet state artifact lints clean")


def main():
    os.makedirs(SMOKE_DIR, exist_ok=True)
    problems = []
    chaos_stage(problems)
    fleet_stage(problems)
    if problems:
        print("\nFAILURES:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("fleet smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
