#!/usr/bin/env python
"""CI smoke test for elastic serving under churn.

Boots the planner daemon as a real subprocess, replays a seeded churn
timeline against its ``/churn`` endpoint while concurrently firing
``/plan`` requests, and asserts that

* every in-flight request gets a well-formed terminal response — churn
  may degrade answers, never drop them;
* every churn event is acknowledged and invalidates the plan cache
  (``elastic.cache.invalidate`` appears in the run log);
* after the last event the daemon still serves a feasible plan;
* the daemon drains cleanly, leaving a schema-valid run log and a
  Chrome trace behind for the build artifact.

Run from the repository root:
``PYTHONPATH=src python scripts/elastic_smoke.py``
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

TERMINAL = {"served", "partial", "rejected", "failed"}
SMOKE_DIR = "smoke-elastic"
SEED = 11

#: Plan requests fired while churn is replaying.
REQUESTS = [
    {"model": "gpt-2l", "gpus": 4, "stage_counts": [1, 2],
     "iterations": 3},
    {"model": "gpt-2l", "gpus": 8, "stage_counts": [1, 2],
     "iterations": 3},
    {"model": "gpt-4l", "gpus": 4, "stage_counts": [1, 2],
     "iterations": 3},
    {"model": "gpt-2l", "gpus": 4, "stage_counts": [1, 2],
     "iterations": 3},
]


def post(port, path, payload, timeout=180):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def main():
    os.makedirs(SMOKE_DIR, exist_ok=True)
    run_log = os.path.join(SMOKE_DIR, "daemon-events.jsonl")
    timeline_path = os.path.join(SMOKE_DIR, "smoke.churn.json")

    sys.path.insert(0, os.path.join(os.getcwd(), "src"))
    from repro.elastic import random_churn_timeline

    timeline = random_churn_timeline(
        4, 2, seed=SEED, num_events=6, horizon_seconds=10.0
    )
    timeline.save(timeline_path)
    print(f"timeline: {len(timeline.events)} events -> {timeline_path}")

    process = subprocess.Popen(
        [
            sys.executable, "-c",
            "from repro.cli import serve_main; "
            "raise SystemExit(serve_main())",
            "--port", "0",
            "--workers", "2",
            "--state-dir", os.path.join(SMOKE_DIR, "state"),
            "--run-log", run_log,
            "--quiet",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    banner = process.stdout.readline()
    assert "listening on" in banner, f"daemon did not start: {banner!r}"
    port = int(banner.rsplit(":", 1)[1])
    print(f"daemon up on port {port}")

    problems = []
    results = [None] * len(REQUESTS)

    def client(index):
        results[index] = post(port, "/plan", REQUESTS[index])

    threads = [
        threading.Thread(target=client, args=(i,))
        for i in range(len(REQUESTS))
    ]
    for thread in threads[:2]:
        thread.start()

    # Replay churn while the first requests are in flight.
    churn_acks = []
    for event in timeline.events:
        code, body = post(port, "/churn", event.to_dict(), timeout=30)
        churn_acks.append((code, body))
        if code != 200:
            problems.append(
                f"churn event {event.kind}@{event.time:g} "
                f"answered http {code}: {body}"
            )
        time.sleep(0.05)

    for thread in threads[2:]:
        thread.start()
    for thread in threads:
        thread.join(timeout=240)

    for index, result in enumerate(results):
        if result is None:
            problems.append(f"request {index} hung or was dropped")
            continue
        code, body = result
        status = body.get("status")
        print(f"request {index}: http {code} -> {status}")
        if status not in TERMINAL:
            problems.append(
                f"request {index}: non-terminal status {status!r}"
            )
        if status in ("served", "partial") and not body.get("plan"):
            problems.append(f"request {index}: {status} without a plan")

    # A malformed churn event must 400, not crash the daemon.
    code, body = post(
        port, "/churn", {"time": 1.0, "kind": "meteor_strike"},
        timeout=30,
    )
    if code != 400:
        problems.append(
            f"invalid churn event answered http {code}, expected 400"
        )

    # After all churn: the daemon must still produce a feasible plan.
    code, body = post(
        port, "/plan",
        {"model": "gpt-2l", "gpus": 4, "stage_counts": [1, 2],
         "iterations": 3},
    )
    final_status = body.get("status")
    print(f"final plan after churn: http {code} -> {final_status}")
    if final_status not in ("served", "partial") or not body.get("plan"):
        problems.append(
            f"no feasible plan after churn: {final_status!r}"
        )

    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=60)
    except subprocess.TimeoutExpired:
        process.kill()
        problems.append("daemon did not drain within 60s of SIGTERM")

    from repro.telemetry import (
        chrome_trace_from_events,
        validate_run_log,
        write_chrome_trace,
    )

    events = validate_run_log(run_log)
    invalidations = [
        e for e in events if e.name == "elastic.cache.invalidate"
    ]
    print(
        f"run log: {len(events)} events, "
        f"{len(invalidations)} cache invalidations, schema OK"
    )
    if len(invalidations) != len(timeline.events):
        problems.append(
            f"{len(invalidations)} elastic.cache.invalidate events "
            f"for {len(timeline.events)} churn events"
        )
    trace_path = os.path.join(SMOKE_DIR, "trace.json")
    write_chrome_trace(chrome_trace_from_events(events), trace_path)
    print(f"chrome trace -> {trace_path}")

    if problems:
        print("\nFAILURES:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("elastic smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
