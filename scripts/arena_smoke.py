#!/usr/bin/env python
"""CI smoke test for the strategy arena.

Races every registered search strategy (greedy, MCMC, bandit) on a
small model under a shared estimate budget and a 10-second deadline per
lane, then asserts that

* every lane finishes without an error and finds a **feasible** plan;
* the tournament is **bit-reproducible**: the winner and the greedy
  lane's deterministic digest match the committed reference
  (``scripts/arena_smoke_reference.json``) — regenerate the reference
  (delete the file and rerun) only with an intentional search change;
* the run log left behind is schema-valid and contains the full
  ``arena.*`` lifecycle.

Artifacts land in ``smoke-arena/`` (run log + tournament JSON report)
for the build upload.

Run from the repository root:
``PYTHONPATH=src python scripts/arena_smoke.py``
"""

import hashlib
import json
import os
import sys

SMOKE_DIR = "smoke-arena"
REFERENCE = os.path.join("scripts", "arena_smoke_reference.json")

MODEL = "gpt-4l"
GPUS = 4
STAGE_COUNT = 2
SEED = 0
MAX_ESTIMATES = 400
DEADLINE_SECONDS = 10.0

#: Wall-clock fields are excluded from the digest by construction.
DETERMINISTIC_FIELDS = (
    "strategy", "seed", "best_objective", "feasible", "converged",
    "num_estimates", "estimates_to_best", "iterations",
    "best_signature", "curve", "error",
)


def digest(outcome_json):
    view = {
        field: outcome_json[field] for field in DETERMINISTIC_FIELDS
    }
    return hashlib.sha256(
        json.dumps(view, sort_keys=True).encode()
    ).hexdigest()[:16]


def main():
    os.makedirs(SMOKE_DIR, exist_ok=True)
    sys.path.insert(0, os.path.join(os.getcwd(), "src"))

    from repro.arena import ArenaEntry, run_tournament
    from repro.cluster import paper_cluster
    from repro.ir.models import build_model
    from repro.profiling import SimulatedProfiler
    from repro.telemetry import (
        JsonlSink,
        TelemetryBus,
        using_bus,
        validate_run_log,
    )

    run_log = os.path.join(SMOKE_DIR, "arena-events.jsonl")
    report_path = os.path.join(SMOKE_DIR, "arena-report.json")
    if os.path.exists(run_log):
        os.remove(run_log)

    graph = build_model(MODEL)
    cluster = paper_cluster(GPUS)
    database = SimulatedProfiler(cluster, seed=SEED).profile(graph)
    entries = [
        ArenaEntry(strategy=name, seed=SEED)
        for name in ("greedy", "mcmc", "bandit")
    ]

    sink = JsonlSink(run_log, flush_every=1)
    bus = TelemetryBus()
    bus.add_sink(sink)
    try:
        with using_bus(bus):
            result = run_tournament(
                graph, cluster, database,
                entries=entries,
                stage_count=STAGE_COUNT,
                budget_per_entry={"max_estimates": MAX_ESTIMATES},
                deadline_seconds=DEADLINE_SECONDS,
                label=f"smoke/{MODEL}/gpus={GPUS}",
            )
    finally:
        sink.close()
    result.write_json(report_path)

    problems = []
    for outcome in result.outcomes:
        line = (
            f"{outcome.strategy}#{outcome.seed}: "
            f"objective={outcome.best_objective:.6f} "
            f"feasible={outcome.feasible} "
            f"estimates={outcome.num_estimates} "
            f"iters={outcome.iterations}"
        )
        print(line)
        if outcome.failed:
            problems.append(f"{outcome.strategy}#{outcome.seed} failed: {outcome.error}")
        elif not outcome.feasible:
            problems.append(f"{outcome.strategy}#{outcome.seed} found no feasible plan")

    winner = result.winner
    if winner is None:
        problems.append("tournament produced no winner")
    else:
        greedy = result.outcome_for("greedy")
        fingerprint = {
            "winner": winner.strategy,
            "winner_digest": digest(winner.to_json()),
            "greedy_digest": digest(greedy.to_json()),
        }
        print(f"winner: {winner.strategy} "
              f"({winner.best_objective:.6f}), "
              f"digests: {fingerprint['winner_digest']} / "
              f"greedy {fingerprint['greedy_digest']}")
        if os.path.exists(REFERENCE):
            with open(REFERENCE) as handle:
                committed = json.load(handle)
            if committed != fingerprint:
                problems.append(
                    f"tournament drifted from the committed reference "
                    f"{REFERENCE}: expected {committed}, got "
                    f"{fingerprint} — regenerate (delete the file and "
                    f"rerun) only with an intentional search change"
                )
            else:
                print(f"(matches committed {REFERENCE})")
        else:
            with open(REFERENCE, "w") as handle:
                json.dump(fingerprint, handle, indent=2)
                handle.write("\n")
            print(f"(reference written to {REFERENCE} — commit it)")

    events = validate_run_log(run_log)
    names = [event.name for event in events]
    print(f"run log: {len(events)} events, schema OK")
    if names.count("arena.begin") != 1 or names.count("arena.end") != 1:
        problems.append("run log missing the arena.begin/arena.end pair")
    for lifecycle in ("arena.entry.begin", "arena.entry.end"):
        if names.count(lifecycle) != len(entries):
            problems.append(
                f"{names.count(lifecycle)} {lifecycle} events for "
                f"{len(entries)} entries"
            )
    print(f"report -> {report_path}")

    if problems:
        print("\nFAILURES:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("arena smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
