#!/usr/bin/env python
"""CI smoke test for the planner service (`repro-serve`).

Boots the daemon as a real subprocess, fires concurrent plan requests
at it — including one guaranteed worker crash (nonexistent model) and
one sub-second deadline — and asserts that every request gets a
well-formed terminal response (served / partial / rejected / failed),
that nothing hangs, and that the daemon drains cleanly on SIGTERM
leaving a schema-valid run log behind for the build artifact.

Run from the repository root: ``PYTHONPATH=src python scripts/service_smoke.py``
"""

import json
import os
import signal
import subprocess
import sys
import threading
import urllib.error
import urllib.request

TERMINAL = {"served", "partial", "rejected", "failed"}
SMOKE_DIR = "smoke-service"

REQUESTS = [
    # Normal load (the first two share a fingerprint: cache check).
    {"model": "gpt-2l", "gpus": 4, "stage_counts": [1, 2],
     "iterations": 3},
    {"model": "gpt-2l", "gpus": 4, "stage_counts": [1, 2],
     "iterations": 3},
    # Invalid request: the model does not exist.  Admission lint must
    # answer `rejected` with an ACE204 diagnostic (HTTP 400) without
    # ever spawning a search worker — never hang or 500-garbage.
    {"model": "no-such-model", "gpus": 4},
    # Sub-second deadline on a search that cannot finish in time: the
    # anytime path must answer with best-so-far or a clean failure.
    {"model": "gpt-4l", "gpus": 4, "stage_counts": [1, 2, 4],
     "iterations": 200, "deadline_seconds": 0.5},
    # Queue pressure with a priority request mixed in.
    {"model": "gpt-2l", "gpus": 4, "stage_counts": [1],
     "iterations": 2, "priority": 5},
    {"model": "gpt-2l", "gpus": 4, "stage_counts": [2],
     "iterations": 2},
]


def post_plan(port, payload, timeout=180):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/plan",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def main():
    os.makedirs(SMOKE_DIR, exist_ok=True)
    run_log = os.path.join(SMOKE_DIR, "daemon-events.jsonl")
    process = subprocess.Popen(
        [
            sys.executable, "-c",
            "from repro.cli import serve_main; "
            "raise SystemExit(serve_main())",
            "--port", "0",
            "--workers", "2",
            "--queue-limit", "3",
            "--state-dir", os.path.join(SMOKE_DIR, "state"),
            "--run-log", run_log,
            "--quiet",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    banner = process.stdout.readline()
    assert "listening on" in banner, f"daemon did not start: {banner!r}"
    port = int(banner.rsplit(":", 1)[1])
    print(f"daemon up on port {port}")

    results = [None] * len(REQUESTS)

    def client(index):
        results[index] = post_plan(port, REQUESTS[index])

    threads = [
        threading.Thread(target=client, args=(i,))
        for i in range(len(REQUESTS))
    ]
    # Give the crash and deadline requests a head start so they reach a
    # worker; the trailing pair then applies queue pressure.
    for thread in threads[:4]:
        thread.start()
    import time as _time

    _time.sleep(0.25)
    for thread in threads[4:]:
        thread.start()
    for thread in threads:
        thread.join(timeout=240)

    problems = []
    for index, result in enumerate(results):
        if result is None:
            problems.append(f"request {index} hung or errored")
            continue
        code, body = result
        status = body.get("status")
        print(f"request {index}: http {code} -> {status}")
        if status not in TERMINAL:
            problems.append(
                f"request {index}: non-terminal status {status!r}"
            )
        if status in ("served", "partial") and not body.get("plan"):
            problems.append(f"request {index}: {status} without a plan")
        if (
            status == "rejected"
            and body.get("retry_after") is None
            and not body.get("diagnostics")
        ):
            # Back-pressure rejections must say when to retry; admission
            # -lint rejections instead carry structured diagnostics.
            problems.append(
                f"request {index}: rejected without retry_after "
                "or diagnostics"
            )
    if results[2] is not None:
        crash_code, crash_body = results[2]
        crash_status = crash_body.get("status")
        if crash_status != "rejected":
            problems.append(
                f"unknown-model request answered {crash_status!r}, "
                "expected rejected (admission lint)"
            )
        else:
            codes = [
                d.get("code") for d in crash_body.get("diagnostics", [])
            ]
            if "ACE204" not in codes:
                problems.append(
                    f"unknown-model rejection lacks ACE204: {codes}"
                )
            if crash_code != 400:
                problems.append(
                    f"unknown-model rejection got http {crash_code}, "
                    "expected 400"
                )

    code, health = (
        None,
        json.loads(
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=10
            ).read()
        ),
    )
    print(f"healthz: {health['status']}")
    if health["status"] not in ("healthy", "degraded"):
        problems.append(f"bad healthz status: {health['status']!r}")

    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=60)
    except subprocess.TimeoutExpired:
        process.kill()
        problems.append("daemon did not drain within 60s of SIGTERM")

    from repro.telemetry import validate_run_log

    events = validate_run_log(run_log)
    service_events = [
        e for e in events if e.name.startswith("service.")
    ]
    print(
        f"run log: {len(events)} events "
        f"({len(service_events)} service.*), schema OK"
    )
    if not service_events:
        problems.append("run log has no service.* events")

    if problems:
        print("\nFAILURES:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("service smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
