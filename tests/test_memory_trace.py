"""Tests for the memory-timeline tool."""

import pytest

from repro.parallel import balanced_config
from repro.runtime import (
    all_stage_timelines,
    max_in_flight,
    stage_memory_timeline,
)


class TestStageMemoryTimeline:
    def test_peak_matches_in_flight_model(self, tiny_graph, small_cluster):
        """The replayed activation peak equals Eq. 1's (p - i) bound."""
        config = balanced_config(tiny_graph, small_cluster, 4)
        num_mb = config.num_microbatches(tiny_graph.global_batch_size)
        for stage in range(4):
            timeline = stage_memory_timeline(tiny_graph, config, stage)
            per_mb = max(timeline.held_bytes) / max_in_flight(
                stage, 4, num_mb
            )
            expected = per_mb * max_in_flight(stage, 4, num_mb)
            assert max(timeline.held_bytes) == pytest.approx(expected)
            # Earlier stages hold more concurrent activation.
            if stage > 0:
                earlier = stage_memory_timeline(
                    tiny_graph, config, stage - 1
                )
                assert max(earlier.held_bytes) >= max(timeline.held_bytes)

    def test_timeline_drains_to_zero(self, tiny_graph, small_cluster):
        config = balanced_config(tiny_graph, small_cluster, 2)
        timeline = stage_memory_timeline(tiny_graph, config, 0)
        assert timeline.held_bytes[-1] == pytest.approx(0.0)

    def test_steps_cover_schedule(self, tiny_graph, small_cluster):
        config = balanced_config(tiny_graph, small_cluster, 2)
        num_mb = config.num_microbatches(tiny_graph.global_batch_size)
        timeline = stage_memory_timeline(tiny_graph, config, 1)
        assert len(timeline.steps) == 2 * num_mb
        assert timeline.steps[0].startswith("F")

    def test_recompute_lowers_peak(self, tiny_graph, small_cluster):
        plain = balanced_config(tiny_graph, small_cluster, 2)
        recomputed = plain.clone()
        recomputed.stages[0].recompute[:] = True
        a = stage_memory_timeline(tiny_graph, plain, 0)
        b = stage_memory_timeline(tiny_graph, recomputed, 0)
        assert max(b.held_bytes) < max(a.held_bytes)
        # Static (weights/optimizer) bytes are untouched.
        assert b.static_bytes == pytest.approx(a.static_bytes)

    def test_peak_properties(self, tiny_graph, small_cluster):
        config = balanced_config(tiny_graph, small_cluster, 2)
        timeline = stage_memory_timeline(tiny_graph, config, 0)
        assert timeline.peak_bytes >= timeline.static_bytes
        assert 0 <= timeline.peak_step < len(timeline.steps)

    def test_all_stage_timelines(self, tiny_graph, small_cluster):
        config = balanced_config(tiny_graph, small_cluster, 3)
        timelines = all_stage_timelines(tiny_graph, config)
        assert [t.stage for t in timelines] == [0, 1, 2]

    def test_bad_stage_raises(self, tiny_graph, small_cluster):
        config = balanced_config(tiny_graph, small_cluster, 2)
        with pytest.raises(IndexError):
            stage_memory_timeline(tiny_graph, config, 5)


class TestProfilerParallelism:
    def test_wall_clock_scales_with_workers(self, small_cluster):
        from conftest import make_tiny_gpt
        from repro.profiling import SimulatedProfiler

        graph = make_tiny_gpt()
        seq = SimulatedProfiler(small_cluster, seed=0)
        seq.profile(graph)
        par = SimulatedProfiler(small_cluster, seed=0, parallel_workers=4)
        par.profile(graph)
        assert seq.profile_seconds == pytest.approx(par.profile_seconds)
        assert par.profile_wall_seconds == pytest.approx(
            seq.profile_wall_seconds / 4
        )

    def test_validation(self, small_cluster):
        from repro.profiling import SimulatedProfiler

        with pytest.raises(ValueError):
            SimulatedProfiler(small_cluster, parallel_workers=0)
