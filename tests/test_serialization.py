"""Tests for plan serialization and trace export."""

import json

import numpy as np
import pytest

from repro.core import SearchTrace
from repro.parallel import (
    balanced_config,
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
    validate_config,
)

from conftest import make_tiny_gpt


class TestConfigSerialization:
    def test_roundtrip_preserves_signature(self, tiny_graph, small_cluster,
                                           tmp_path):
        config = balanced_config(tiny_graph, small_cluster, 3)
        config.stages[0].recompute[:3] = True
        # Stage 2 owns 2 devices in the (1, 1, 2) split; give it tp=2.
        config.stages[2].tp[:] = 2
        config.stages[2].dp[:] = 1
        path = tmp_path / "plan.json"
        save_config(config, path)
        loaded = load_config(path)
        assert loaded.signature() == config.signature()
        validate_config(loaded, tiny_graph, small_cluster)

    def test_roundtrip_dict(self, tiny_graph, small_cluster):
        config = balanced_config(tiny_graph, small_cluster, 2)
        data = config_to_dict(config)
        rebuilt = config_from_dict(data)
        assert rebuilt.summary_tuple() == config.summary_tuple()
        np.testing.assert_array_equal(
            rebuilt.stages[0].tp, config.stages[0].tp
        )

    def test_json_is_plain(self, tiny_graph, small_cluster):
        config = balanced_config(tiny_graph, small_cluster, 2)
        text = json.dumps(config_to_dict(config))  # must not raise
        assert "microbatch_size" in text

    def test_unknown_version_rejected(self, tiny_graph, small_cluster):
        data = config_to_dict(balanced_config(tiny_graph, small_cluster, 2))
        data["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            config_from_dict(data)

    def test_estimates_survive_roundtrip(self, tiny_graph, small_cluster,
                                         tiny_perf_model, tmp_path):
        config = balanced_config(tiny_graph, small_cluster, 2)
        path = tmp_path / "plan.json"
        save_config(config, path)
        loaded = load_config(path)
        assert tiny_perf_model.estimate(loaded).iteration_time == (
            tiny_perf_model.estimate(config).iteration_time
        )


class TestTraceSerialization:
    def test_roundtrip(self):
        trace = SearchTrace()
        trace.record_iteration(
            index=1, elapsed=0.5, bottlenecks_tried=1, hops_used=2,
            improved=True, objective=3.0, best_objective=3.0,
        )
        trace.record_iteration(
            index=2, elapsed=1.0, bottlenecks_tried=2, hops_used=0,
            improved=False, objective=3.0, best_objective=3.0,
        )
        rebuilt = SearchTrace.from_json(
            json.loads(json.dumps(trace.to_json()))
        )
        assert rebuilt.num_iterations == 2
        assert rebuilt.records[0].hops_used == 2
        assert rebuilt.convergence == trace.convergence
        assert rebuilt.hop_histogram() == trace.hop_histogram()


class TestCliOutput:
    def test_search_saves_plan(self, tmp_path, capsys):
        from repro.cli import search_main
        from repro.parallel import load_config as load

        path = tmp_path / "plan.json"
        code = search_main(
            [
                "--model", "gpt3-350m", "--gpus", "2",
                "--iterations", "2", "--output", str(path), "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan_file"] == str(path)
        plan = load(path)
        assert plan.total_devices == 2
