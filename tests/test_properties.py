"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import CollectiveCostModel, paper_cluster
from repro.ir.tensor import TensorSpec
from repro.numrt import MLP, make_dataset, pp_fn, rc_fn, runs_equivalent, serial_fn, train
from repro.parallel import split_devices, split_ops_balanced
from repro.perfmodel import in_flight_counts, iteration_time_1f1b
from repro.perfmodel.memory import activation_kept_mask
from repro.runtime import max_in_flight, simulate_pipeline, stage_schedule

from conftest import make_tiny_gpt

powers_of_two = st.integers(0, 6).map(lambda e: 1 << e)


class TestSplitDevicesProperties:
    @given(total_exp=st.integers(0, 7), data=st.data())
    def test_split_always_valid(self, total_exp, data):
        total = 1 << total_exp
        parts = data.draw(st.integers(1, total))
        counts = split_devices(total, parts)
        assert sum(counts) == total
        assert len(counts) == parts
        assert all(c >= 1 and (c & (c - 1)) == 0 for c in counts)

    @given(total_exp=st.integers(1, 7), data=st.data())
    def test_split_reasonably_balanced(self, total_exp, data):
        total = 1 << total_exp
        parts = data.draw(st.integers(1, total))
        counts = split_devices(total, parts)
        # No stage holds more than half the machine unless forced to.
        if parts >= 4:
            assert max(counts) <= total // 2


class TestSplitOpsProperties:
    @given(num_stages=st.integers(1, 12))
    @settings(max_examples=20, deadline=None)
    def test_boundaries_partition(self, num_stages):
        graph = make_tiny_gpt()
        bounds = split_ops_balanced(graph, num_stages)
        assert bounds[0] == 0
        assert bounds[-1] == graph.num_ops
        assert all(b > a for a, b in zip(bounds, bounds[1:]))
        assert len(bounds) == num_stages + 1


class TestScheduleProperties:
    @given(
        num_stages=st.integers(1, 8),
        num_microbatches=st.integers(1, 32),
    )
    @settings(max_examples=50, deadline=None)
    def test_1f1b_invariants(self, num_stages, num_microbatches):
        for stage in range(num_stages):
            tasks = stage_schedule(stage, num_stages, num_microbatches)
            assert len(tasks) == 2 * num_microbatches
            # Forward of each microbatch precedes its backward.
            seen = set()
            for task in tasks:
                if task.direction == "B":
                    assert task.microbatch in seen
                else:
                    seen.add(task.microbatch)
            # In-flight never exceeds Eq. 1's bound.
            assert (
                max_in_flight(stage, num_stages, num_microbatches)
                <= min(num_stages - stage, num_microbatches)
            )

    @given(
        num_stages=st.integers(1, 6),
        num_microbatches=st.integers(1, 16),
        fwd=st.floats(0.1, 10.0),
        bwd=st.floats(0.1, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_simulator_at_least_analytic(
        self, num_stages, num_microbatches, fwd, bwd
    ):
        """The event simulation can never beat the Eq. 2 lower-ish
        bound for homogeneous stages (they coincide exactly there)."""
        analytic = iteration_time_1f1b(
            [fwd] * num_stages, [bwd] * num_stages, num_microbatches
        )
        simulated = simulate_pipeline(
            [fwd] * num_stages, [bwd] * num_stages, num_microbatches
        ).makespan
        assert simulated >= analytic * 0.999
        assert simulated <= analytic * 1.001


class TestMemoryProperties:
    @given(
        num_stages=st.integers(1, 10),
        num_microbatches=st.integers(1, 64),
    )
    def test_in_flight_monotone_decreasing(
        self, num_stages, num_microbatches
    ):
        counts = in_flight_counts(num_stages, num_microbatches)
        assert all(a >= b for a, b in zip(counts, counts[1:]))
        assert counts[-1] == 1 or num_microbatches == counts[-1]

    @given(st.lists(st.booleans(), min_size=1, max_size=64))
    def test_kept_mask_bounds(self, flags):
        rc = np.array(flags)
        sid = np.zeros(len(flags), dtype=np.int64)
        kept = activation_kept_mask(rc, sid)
        # Non-recomputed ops always keep activations.
        assert np.all(kept[~rc] == 1.0)
        # Total kept never exceeds op count; at least segment starts.
        assert kept.sum() <= len(flags)
        if rc.any():
            assert kept[np.argmax(rc)] == 1.0  # first recomputed op


class TestTensorSpecProperties:
    @given(
        dims=st.lists(st.integers(1, 64), min_size=1, max_size=4),
        ways_exp=st.integers(0, 3),
    )
    def test_split_conserves_elements(self, dims, ways_exp):
        ways = 1 << ways_exp
        dims = list(dims)
        dims[0] *= ways  # make divisible
        spec = TensorSpec(tuple(dims))
        shard = spec.split(0, ways)
        assert shard.numel * ways == spec.numel


class TestCollectiveProperties:
    @given(
        bytes_exp=st.integers(10, 28),
        group_exp=st.integers(1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_allreduce_at_least_allgather(self, bytes_exp, group_exp):
        model = CollectiveCostModel(paper_cluster(32))
        num_bytes = 1 << bytes_exp
        group = 1 << group_exp
        assert model.allreduce_time(num_bytes, group) >= model.allgather_time(
            num_bytes, group
        )

    @given(group_exp=st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_allreduce_monotone_in_bytes(self, group_exp):
        model = CollectiveCostModel(paper_cluster(32))
        group = 1 << group_exp
        times = [
            model.allreduce_time(1 << e, group) for e in range(16, 26, 2)
        ]
        assert times == sorted(times)


class TestNumrtProperties:
    @given(
        stages=st.sampled_from([1, 2, 4]),
        microbatches=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=12, deadline=None)
    def test_pipeline_always_serial_equivalent(self, stages, microbatches):
        model = MLP([8, 16, 8, 16, 4], seed=5)
        x, target = make_dataset(16, 8, 4, seed=6)
        reference = train(model, x, target, serial_fn, steps=2)
        run = train(model, x, target, pp_fn(stages, microbatches), steps=2)
        assert runs_equivalent(reference, run)

    @given(segment=st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_recompute_always_serial_equivalent(self, segment):
        model = MLP([8, 16, 8, 16, 4], seed=5)
        x, target = make_dataset(16, 8, 4, seed=6)
        reference = train(model, x, target, serial_fn, steps=2)
        run = train(model, x, target, rc_fn(segment), steps=2)
        assert runs_equivalent(reference, run)
