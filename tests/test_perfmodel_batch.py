"""Equivalence of ``estimate_batch`` with a sequential ``estimate`` loop.

The batched estimator's contract is *bit identity*: for any batch of
configurations and any starting cache state — warm, cold, or small
enough that insertions evict mid-batch — ``estimate_batch(configs)``
must leave the model in exactly the state a ``[estimate(c) for c in
configs]`` loop would, and return exactly the reports that loop would.
The hypothesis test below drives randomized batches (duplicates
included) against randomized warm subsets and LRU sizes; deterministic
tests pin down the trickiest corner (a mid-batch eviction forcing a
later config to re-miss) and the batch telemetry shape.
"""

import functools
import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import ParallelConfig, balanced_config
from repro.perfmodel import PerfModel
from repro.perfmodel.model import _PendingReport
from repro.profiling import SimulatedProfiler
from repro.telemetry import RingBufferSink, TelemetryBus, using_bus
from repro.telemetry.events import (
    PERFMODEL_ESTIMATE,
    PERFMODEL_ESTIMATE_BATCH,
)

from conftest import make_tight_cluster, make_tiny_gpt

# Built lazily (not at import/collection time) and shared by every
# example: hypothesis runs many examples per test, so the problem and
# the candidate pool must not be rebuilt per example.  The cluster is
# deliberately tight so the pool mixes feasible and OOM candidates and
# ``first_feasible_estimate`` accounting is actually exercised.


@functools.lru_cache(maxsize=None)
def _problem():
    graph = make_tiny_gpt()
    cluster = make_tight_cluster(4, memory_mb=24)
    database = SimulatedProfiler(cluster, seed=0).profile(graph)
    return graph, cluster, database


@functools.lru_cache(maxsize=None)
def _variants():
    """A pool of distinct configs spanning 1/2/4 stages, tp, and mbs."""
    graph, cluster, _ = _problem()
    pool = []
    for num_stages in (1, 2, 4):
        base = balanced_config(graph, cluster, num_stages)
        pool.append(base)
        for k in range(6):
            dirty = k % num_stages
            variant = base.mutated_copy([dirty])
            stage = variant.stages[dirty]
            stage.recompute[k % stage.num_ops] = True
            pool.append(variant)
        if base.stages[0].num_devices >= 2:
            tp_variant = base.mutated_copy(range(num_stages))
            for stage in tp_variant.stages:
                stage.set_uniform_parallel(2)
            pool.append(tp_variant)
    # Microbatch variants share their stages by reference; only the
    # header of the config signature differs.
    for mbs in (2, 4):
        pool.append(
            ParallelConfig(stages=list(pool[0].stages), microbatch_size=mbs)
        )
    return tuple(pool)


def _fresh_models(cache_size, stage_cache_size):
    graph, cluster, database = _problem()
    kwargs = dict(cache_size=cache_size, stage_cache_size=stage_cache_size)
    return (
        PerfModel(graph, cluster, database, **kwargs),
        PerfModel(graph, cluster, database, **kwargs),
    )


def _assert_same_state(seq, bat):
    """Counters, feasibility tracking, and both LRUs (order included)."""
    assert bat.num_estimates == seq.num_estimates
    assert bat.num_stage_costs == seq.num_stage_costs
    assert bat.num_stage_hits == seq.num_stage_hits
    assert (
        bat.counters["config_hits"].value
        == seq.counters["config_hits"].value
    )
    assert bat.first_feasible_estimate == seq.first_feasible_estimate
    assert list(bat._cache.keys()) == list(seq._cache.keys())
    assert list(bat._stage_cache.keys()) == list(seq._stage_cache.keys())
    for key, report in bat._cache.items():
        assert not isinstance(report, _PendingReport)
        assert report.iteration_time == seq._cache[key].iteration_time


@settings(max_examples=50, deadline=None)
@given(
    batch_idx=st.lists(
        st.integers(min_value=0, max_value=63), min_size=0, max_size=10
    ),
    warm_idx=st.lists(
        st.integers(min_value=0, max_value=63), min_size=0, max_size=6
    ),
    cache_size=st.sampled_from([1, 2, 3, 1024]),
    stage_cache_size=st.sampled_from([0, 2, 1024]),
)
def test_batch_bit_identical_to_sequential(
    batch_idx, warm_idx, cache_size, stage_cache_size
):
    variants = _variants()
    n = len(variants)
    seq, bat = _fresh_models(cache_size, stage_cache_size)
    for i in warm_idx:  # identical warm state on both models
        seq.estimate(variants[i % n])
        bat.estimate(variants[i % n])
    batch = [variants[i % n] for i in batch_idx]

    seq_reports = [seq.estimate(config) for config in batch]
    bat_reports = bat.estimate_batch(batch)

    assert len(bat_reports) == len(seq_reports)
    for a, b in zip(seq_reports, bat_reports):
        # Lazy fast paths first, *before* equality materializes stages.
        assert b.num_stages == a.num_stages
        assert b.is_oom == a.is_oom
        assert b.peak_memories == a.peak_memories
        assert b == a
        assert pickle.dumps(b) == pickle.dumps(a)
        assert all(type(s.in_flight) is int for s in b.stages)
    _assert_same_state(seq, bat)


def test_midbatch_eviction_matches_sequential():
    """The corner the slot reservation exists for.

    With ``cache_size=2``, a batch ``[a, b, c, a]`` against a cache
    warmed with ``a``: sequentially, c's insertion evicts a, so the
    final a *re-misses*.  A batch path that resolved hits against the
    pre-batch cache would count it as a hit instead.
    """
    variants = _variants()
    a, b, c = variants[0], variants[1], variants[2]
    seq, bat = _fresh_models(2, 1024)
    seq.estimate(a)
    bat.estimate(a)

    batch = [a, b, c, a]
    seq_reports = [seq.estimate(config) for config in batch]
    bat_reports = bat.estimate_batch(batch)

    assert seq.num_estimates == 4  # warm-up miss + b + c + re-missed a
    assert seq.counters["config_hits"].value == 1
    assert [r.iteration_time for r in bat_reports] == [
        r.iteration_time for r in seq_reports
    ]
    _assert_same_state(seq, bat)


def test_in_batch_duplicates_share_one_estimate():
    variants = _variants()
    seq, bat = _fresh_models(1024, 1024)
    batch = [variants[3], variants[3], variants[4], variants[3]]
    seq_reports = [seq.estimate(config) for config in batch]
    bat_reports = bat.estimate_batch(batch)
    assert bat.num_estimates == 2
    assert bat_reports[0] is bat_reports[1] is bat_reports[3]
    assert bat_reports[0] == seq_reports[0]
    _assert_same_state(seq, bat)


def test_empty_batch_is_a_no_op():
    model, _ = _fresh_models(1024, 1024)
    bus = TelemetryBus()
    sink = bus.add_sink(RingBufferSink())
    with using_bus(bus):
        assert model.estimate_batch([]) == []
    assert model.num_estimates == 0
    assert sink.events == []


def test_estimate_batch_emits_one_aggregated_event():
    variants = _variants()
    model, _ = _fresh_models(1024, 1024)
    model.estimate(variants[0])  # one warm entry -> one hit in the batch
    bus = TelemetryBus()
    sink = bus.add_sink(RingBufferSink())
    with using_bus(bus):
        model.estimate_batch([variants[0], variants[1], variants[2]])
    batch_events = [
        e for e in sink.events if e.name == PERFMODEL_ESTIMATE_BATCH
    ]
    per_config = [e for e in sink.events if e.name == PERFMODEL_ESTIMATE]
    assert len(batch_events) == 1
    assert per_config == []
    attrs = batch_events[0].attrs
    assert attrs["batch"] == 3
    assert attrs["hits"] == 1
    assert attrs["misses"] == 2
