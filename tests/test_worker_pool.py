"""Lifecycle tests for the persistent worker pool.

These exercise :class:`repro.core.pool.WorkerPool` directly — the
scheduler-level behavior (retries, timeouts, deadline shedding) lives
in ``test_search_faults.py``.  The properties pinned here are the ones
the pool exists for: one fork serves many tasks, a task error does not
cost the process, and worker lifetimes are visible in telemetry.
"""

import multiprocessing

from repro.core.pool import WorkerPool
from repro.telemetry import RingBufferSink, TelemetryBus
from repro.telemetry.events import (
    DRIVER_POOL_WORKER_EXIT,
    DRIVER_POOL_WORKER_START,
)


def _double(payload):
    return payload * 2


def _flaky(payload):
    if payload == "boom":
        raise RuntimeError("kaput")
    return "ok:" + payload


def _identity(task):
    return task


def _run_task(worker, task):
    worker.conn.send(task)
    worker.busy = True
    message = worker.conn.recv()
    worker.busy = False
    worker.tasks_done += 1
    return message


def test_one_worker_serves_many_tasks():
    with WorkerPool(_double, _identity, max_workers=1) as pool:
        results = []
        for task in (1, 2, 3):
            worker = pool.acquire()
            status, result, _events = _run_task(worker, task)
            assert status == "ok"
            results.append(result)
    assert results == [2, 4, 6]
    assert pool.num_forks == 1  # persistence: three tasks, one fork


def test_worker_survives_task_error():
    with WorkerPool(_flaky, _identity, max_workers=1) as pool:
        worker = pool.acquire()
        status, detail, _events = _run_task(worker, "boom")
        assert status == "error"
        assert "RuntimeError" in detail and "kaput" in detail
        # Same process takes the next task.
        pid_before = worker.pid
        status, result, _events = _run_task(pool.acquire(), "next")
        assert (status, result) == ("ok", "ok:next")
        assert pool.acquire().pid == pid_before
    assert pool.num_forks == 1


def test_pool_is_lazy_and_capped():
    with WorkerPool(_double, _identity, max_workers=2) as pool:
        assert len(pool) == 0  # nothing forked until acquire
        first = pool.acquire()
        first.busy = True
        second = pool.acquire()
        second.busy = True
        assert pool.acquire() is None  # saturated at max_workers
        assert pool.num_forks == 2
        first.busy = False
        assert pool.acquire() is first
        first.busy = False
        _run_task(first, 21)


def test_discarded_worker_is_replaced():
    with WorkerPool(_double, _identity, max_workers=1) as pool:
        first = pool.acquire()
        first_pid = first.pid
        pool.discard(first, kill=True)
        assert len(pool) == 0
        replacement = pool.acquire()
        assert replacement.pid != first_pid
        status, result, _events = _run_task(replacement, 5)
        assert (status, result) == ("ok", 10)
    assert pool.num_forks == 2


def test_worker_lifetimes_are_visible_in_telemetry():
    bus = TelemetryBus()
    sink = bus.add_sink(RingBufferSink())
    with WorkerPool(_double, _identity, max_workers=1, bus=bus) as pool:
        worker = pool.acquire()
        _run_task(worker, 1)
        _run_task(worker, 2)
    starts = [e for e in sink.events if e.name == DRIVER_POOL_WORKER_START]
    exits = [e for e in sink.events if e.name == DRIVER_POOL_WORKER_EXIT]
    assert len(starts) == 1 and len(exits) == 1
    assert starts[0].attrs["worker_pid"] == exits[0].attrs["worker_pid"]
    assert exits[0].attrs["tasks"] == 2
    assert exits[0].attrs["killed"] is False


def test_spawned_state_shipping_when_fork_unavailable():
    """Under spawn/forkserver the pool ships state once per worker."""
    ctx_method = multiprocessing.get_start_method()
    pool = WorkerPool(_double, _identity, max_workers=1)
    # Force the shipping path regardless of platform default: module-
    # level functions are picklable, so this works under any method.
    pool._fork = False
    try:
        worker = pool.acquire()
        status, result, _events = _run_task(worker, 7)
        assert (status, result) == ("ok", 14)
    finally:
        pool.shutdown()
    assert ctx_method in ("fork", "spawn", "forkserver")
