"""Tests for repro.parallel.stage."""

import numpy as np
import pytest

from repro.parallel import StageConfig, is_power_of_two


class TestIsPowerOfTwo:
    def test_powers(self):
        for v in (1, 2, 4, 1024):
            assert is_power_of_two(v)

    def test_non_powers(self):
        for v in (0, 3, 6, -4):
            assert not is_power_of_two(v)


class TestStageConfig:
    def test_uniform_basics(self):
        stage = StageConfig.uniform(0, 4, 8, tp=2)
        assert stage.num_ops == 4
        assert list(stage.op_indices) == [0, 1, 2, 3]
        assert np.all(stage.tp == 2)
        assert np.all(stage.dp == 4)
        assert not np.any(stage.recompute)

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            StageConfig.uniform(4, 4, 2)  # empty span
        with pytest.raises(ValueError):
            StageConfig.uniform(0, 4, 3)  # non-pow2 devices
        with pytest.raises(ValueError):
            StageConfig.uniform(0, 4, 2, tp=4)  # tp > devices
        with pytest.raises(ValueError):
            StageConfig.uniform(0, 4, 4, tp=3)  # non-pow2 tp

    def test_array_shape_validated(self):
        with pytest.raises(ValueError):
            StageConfig(
                start=0, end=2, num_devices=2,
                tp=np.ones(3, dtype=np.int64),
                dp=np.ones(2, dtype=np.int64),
                tp_dim=np.zeros(2, dtype=np.int64),
                recompute=np.zeros(2, dtype=bool),
            )

    def test_clone_is_deep(self):
        stage = StageConfig.uniform(0, 4, 4)
        copy = stage.clone()
        copy.tp[0] = 4
        assert stage.tp[0] == 1

    def test_slice_arrays(self):
        stage = StageConfig.uniform(2, 8, 4, tp=2)
        part = stage.slice_arrays(1, 3)
        assert part.start == 3 and part.end == 5
        assert np.all(part.tp == 2)
        with pytest.raises(ValueError):
            stage.slice_arrays(3, 3)

    def test_set_uniform_parallel(self):
        stage = StageConfig.uniform(0, 4, 8)
        stage.set_uniform_parallel(4)
        assert np.all(stage.tp == 4)
        assert np.all(stage.dp == 2)
        with pytest.raises(ValueError):
            stage.set_uniform_parallel(16)

    def test_with_devices_rescales(self):
        stage = StageConfig.uniform(0, 4, 8, tp=4)
        grown = stage.with_devices(16)
        assert np.all(grown.dp == 4)
        shrunk = stage.with_devices(2)
        assert np.all(shrunk.tp == 2)
        assert np.all(shrunk.dp == 1)

    def test_signature_bytes_changes_with_settings(self):
        a = StageConfig.uniform(0, 4, 4, tp=1)
        b = StageConfig.uniform(0, 4, 4, tp=2)
        assert a.signature_bytes() != b.signature_bytes()
        assert a.signature_bytes() == a.clone().signature_bytes()
