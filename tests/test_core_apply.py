"""Tests for primitive application."""

import numpy as np
import pytest

from repro.core import (
    ApplyContext,
    apply_primitive,
    identify_bottleneck,
    move_ops,
)
from repro.parallel import balanced_config, is_valid, validate_config


@pytest.fixture()
def ctx(tiny_graph, small_cluster, tiny_perf_model):
    config = balanced_config(tiny_graph, small_cluster, 4)
    report = tiny_perf_model.estimate(config)
    return ApplyContext(
        graph=tiny_graph,
        cluster=small_cluster,
        perf_model=tiny_perf_model,
        config=config,
        report=report,
        bottleneck=identify_bottleneck(report),
    )


def _ctx_for(graph, cluster, perf_model, config, stage=None):
    report = perf_model.estimate(config)
    bottleneck = identify_bottleneck(report)
    if stage is not None:
        from repro.core.bottleneck import Bottleneck

        bottleneck = Bottleneck(
            stage=stage, resources=bottleneck.resources, is_oom=False
        )
    return ApplyContext(
        graph=graph,
        cluster=cluster,
        perf_model=perf_model,
        config=config,
        report=report,
        bottleneck=bottleneck,
    )


class TestMoveOps:
    def test_adjacent_move(self, tiny_graph, small_cluster):
        config = balanced_config(tiny_graph, small_cluster, 4)
        before = [s.num_ops for s in config.stages]
        moved = move_ops(config, tiny_graph, 0, 1, 2)
        after = [s.num_ops for s in moved.stages]
        assert after[0] == before[0] - 2
        assert after[1] == before[1] + 2
        validate_config(moved, tiny_graph, small_cluster)

    def test_relay_move(self, tiny_graph, small_cluster):
        config = balanced_config(tiny_graph, small_cluster, 4)
        before = [s.num_ops for s in config.stages]
        moved = move_ops(config, tiny_graph, 0, 3, 1)
        after = [s.num_ops for s in moved.stages]
        assert after[0] == before[0] - 1
        assert after[1] == before[1]
        assert after[2] == before[2]
        assert after[3] == before[3] + 1
        validate_config(moved, tiny_graph, small_cluster)

    def test_backward_move(self, tiny_graph, small_cluster):
        config = balanced_config(tiny_graph, small_cluster, 4)
        moved = move_ops(config, tiny_graph, 3, 0, 2)
        assert moved.stages[3].num_ops == config.stages[3].num_ops - 2
        assert moved.stages[0].num_ops == config.stages[0].num_ops + 2
        validate_config(moved, tiny_graph, small_cluster)

    def test_refuses_emptying_stage(self, tiny_graph, small_cluster):
        config = balanced_config(tiny_graph, small_cluster, 4)
        span = config.stages[0].num_ops
        assert move_ops(config, tiny_graph, 0, 1, span) is None

    def test_same_stage_is_noop(self, tiny_graph, small_cluster):
        config = balanced_config(tiny_graph, small_cluster, 4)
        assert move_ops(config, tiny_graph, 1, 1, 1) is None

    def test_moved_ops_adopt_new_stage_settings(
        self, tiny_graph, small_cluster
    ):
        config = balanced_config(tiny_graph, small_cluster, 2)
        config.stages[1].set_uniform_parallel(2)
        moved = move_ops(config, tiny_graph, 0, 1, 3)
        # Ops arriving in stage 1 adopt tp=2.
        assert np.all(moved.stages[1].tp == 2)
        validate_config(moved, tiny_graph, small_cluster)


class TestAppliers:
    @pytest.mark.parametrize(
        "name",
        [
            "inc-op#", "dec-op#", "inc-mbs", "dec-mbs",
            "inc-dp", "dec-dp", "inc-tp", "dec-tp", "inc-rc", "dec-rc",
        ],
    )
    def test_all_candidates_valid(self, ctx, name):
        for candidate in apply_primitive(name, ctx):
            validate_config(candidate, ctx.graph, ctx.cluster)
            assert candidate.signature() != ctx.config.signature()

    def test_unknown_primitive_raises(self, ctx):
        with pytest.raises(KeyError):
            apply_primitive("inc-zz", ctx)

    def test_inc_mbs_doubles(self, ctx):
        candidates = apply_primitive("inc-mbs", ctx)
        assert candidates
        assert candidates[0].microbatch_size == ctx.config.microbatch_size * 2

    def test_dec_mbs_blocked_at_minimum(
        self, tiny_graph, small_cluster, tiny_perf_model
    ):
        config = balanced_config(tiny_graph, small_cluster, 4)
        assert config.microbatch_size == 1
        ctx = _ctx_for(tiny_graph, small_cluster, tiny_perf_model, config)
        assert apply_primitive("dec-mbs", ctx) == []

    def test_inc_tp_swaps_dp_for_tp(
        self, tiny_graph, small_cluster, tiny_perf_model
    ):
        config = balanced_config(tiny_graph, small_cluster, 2)  # dp=2/stage
        ctx = _ctx_for(tiny_graph, small_cluster, tiny_perf_model, config, 0)
        candidates = apply_primitive("inc-tp", ctx)
        assert candidates
        swap = candidates[0]
        assert np.all(swap.stages[0].tp == 2)
        assert np.all(swap.stages[0].dp == 1)
        # Devices unchanged.
        assert swap.stages[0].num_devices == 2

    def test_inc_dp_swaps_tp_for_dp(
        self, tiny_graph, small_cluster, tiny_perf_model
    ):
        config = balanced_config(tiny_graph, small_cluster, 2, tp=2,
                                 microbatch_size=4)
        ctx = _ctx_for(tiny_graph, small_cluster, tiny_perf_model, config, 0)
        candidates = apply_primitive("inc-dp", ctx)
        assert candidates
        assert np.all(candidates[0].stages[0].dp == 2)

    def test_device_transfer_needs_double_partner(
        self, tiny_graph, small_cluster, tiny_perf_model
    ):
        # (1, 1, 2) split: stage 0 can double by taking from stage 2.
        from repro.parallel import ParallelConfig, StageConfig

        n = tiny_graph.num_ops
        config = ParallelConfig(
            stages=[
                StageConfig.uniform(0, n // 3, 1),
                StageConfig.uniform(n // 3, 2 * n // 3, 1),
                StageConfig.uniform(2 * n // 3, n, 2),
            ],
            microbatch_size=2,
        )
        validate_config(config, tiny_graph, small_cluster)
        ctx = _ctx_for(tiny_graph, small_cluster, tiny_perf_model, config, 0)
        grown = [
            c for c in apply_primitive("inc-dp", ctx)
            if c.stages[0].num_devices == 2
        ]
        assert grown
        assert grown[0].stages[2].num_devices == 1
        assert grown[0].total_devices == 4

    def test_inc_rc_enables_recompute(self, ctx):
        candidates = apply_primitive("inc-rc", ctx)
        assert candidates
        stage = ctx.bottleneck.stage
        assert any(c.stages[stage].recompute.any() for c in candidates)

    def test_dec_rc_noop_without_recompute(self, ctx):
        # The balanced init has no recomputation and plenty of memory,
        # so dec-rc has nothing to do.
        assert apply_primitive("dec-rc", ctx) == []

    def test_dec_rc_disables(self, tiny_graph, small_cluster,
                             tiny_perf_model):
        config = balanced_config(tiny_graph, small_cluster, 2)
        config.stages[0].recompute[:] = True
        ctx = _ctx_for(tiny_graph, small_cluster, tiny_perf_model, config, 0)
        candidates = apply_primitive("dec-rc", ctx)
        assert candidates
        assert any(
            c.stages[0].recompute.sum() < config.stages[0].num_ops
            for c in candidates
        )

    def test_single_stage_op_moves_empty(
        self, tiny_graph, small_cluster, tiny_perf_model
    ):
        config = balanced_config(tiny_graph, small_cluster, 1)
        ctx = _ctx_for(tiny_graph, small_cluster, tiny_perf_model, config)
        assert apply_primitive("dec-op#", ctx) == []
        assert apply_primitive("inc-op#", ctx) == []
