"""Tests for repro.ir.graph."""

import numpy as np
import pytest

from repro.ir.graph import GraphArrays, OpGraph
from repro.ir.ops import elementwise_op, matmul_op

from conftest import make_tiny_gpt


def two_op_graph():
    return OpGraph(
        name="toy",
        ops=[matmul_op("m", 4, 8, 2), elementwise_op("e", "relu", 16)],
        precision="fp16",
        global_batch_size=8,
    )


class TestOpGraph:
    def test_empty_graph_raises(self):
        with pytest.raises(ValueError):
            OpGraph(name="x", ops=[])

    def test_bad_batch_raises(self):
        with pytest.raises(ValueError):
            OpGraph(name="x", ops=[matmul_op("m", 2, 2, 1)],
                    global_batch_size=0)

    def test_len_iter_getitem(self):
        graph = two_op_graph()
        assert len(graph) == 2
        assert [op.name for op in graph] == ["m", "e"]
        assert graph[1].kind == "relu"

    def test_total_params(self):
        graph = two_op_graph()
        assert graph.total_params == 4 * 8 + 8

    def test_elem_bytes(self):
        assert two_op_graph().elem_bytes == 2

    def test_op_index(self):
        graph = two_op_graph()
        assert graph.op_index("e") == 1
        with pytest.raises(KeyError):
            graph.op_index("missing")

    def test_describe_mentions_name(self):
        assert "toy" in two_op_graph().describe()

    def test_total_flops_positive(self):
        graph = make_tiny_gpt()
        assert graph.total_fwd_flops_per_sample > 0
        assert (
            graph.total_train_flops_per_sample
            > graph.total_fwd_flops_per_sample
        )


class TestGraphArrays:
    def test_shapes(self):
        graph = make_tiny_gpt()
        arrays = graph.arrays
        n = graph.num_ops
        assert arrays.flops.shape == (n,)
        assert arrays.fwd_comm_numel.shape[0] == n
        assert arrays.num_ops == n

    def test_arrays_cached(self):
        graph = make_tiny_gpt()
        assert graph.arrays is graph.arrays

    def test_arrays_immutable(self):
        graph = make_tiny_gpt()
        with pytest.raises(ValueError):
            graph.arrays.flops[0] = 1.0

    def test_option_padding_repeats_last(self):
        graph = two_op_graph()
        arrays = GraphArrays.from_ops(graph.ops)
        # op "e" has 1 option; padded column repeats it.
        assert (
            arrays.fwd_comm_numel[1, 0] == arrays.fwd_comm_numel[1, 1]
        )

    def test_values_match_ops(self):
        graph = two_op_graph()
        arrays = graph.arrays
        assert arrays.params[0] == graph.ops[0].params
        assert arrays.max_tp[1] == graph.ops[1].max_tp
        np.testing.assert_allclose(
            arrays.bwd_flops[0], graph.ops[0].bwd_flops
        )
