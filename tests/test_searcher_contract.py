"""The shared ``Searcher`` contract, enforced across every strategy.

Every registered strategy must be: seed-reproducible against a fresh
performance model, anytime under a :class:`Deadline` (best-so-far,
``partial=True``, never raises), bit-exact through checkpoint/resume,
and telemetry-well-formed (registered event names, complete
``search.iteration`` attrs, a trace reconstructible from the event
stream).  The hypothesis property at the bottom pins the refactor
itself: the extracted :class:`SearchContext` greedy path must be
bit-identical — same plans, traces, and estimate counts — to a frozen
copy of the pre-refactor monolithic ``AcesoSearch.run``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BanditOptions,
    BanditSearcher,
    MCMCOptions,
    MCMCSearcher,
    SearchBudget,
    Searcher,
    StrategyError,
    available_strategies,
    build_options,
    get_searcher_class,
    make_searcher,
    register_searcher,
    search_all_stage_counts,
    strategy_option_names,
    unregister_searcher,
    warm_start_from_events,
)
from repro.core.budget import BudgetKwargsError, Deadline
from repro.core.search import AcesoSearch, AcesoSearchOptions
from repro.parallel import balanced_config
from repro.perfmodel import PerfModel
from repro.telemetry import CallbackSink, TelemetryBus, using_bus
from repro.telemetry.events import (
    SEARCH_BEGIN,
    SEARCH_END,
    SEARCH_ITERATION,
    SEARCH_STRATEGY_ARM,
    SEARCH_STRATEGY_STATS,
    is_registered,
)
from repro.core.trace import SearchTrace

STRATEGIES = ("greedy", "mcmc", "bandit")

#: Attrs every ``search.iteration`` event must carry (trace schema).
ITERATION_ATTRS = (
    "index",
    "elapsed",
    "bottlenecks_tried",
    "hops_used",
    "improved",
    "objective",
    "best_objective",
)


def fresh_model(graph, cluster, database):
    """A cold-cache model so estimate counts compare across runs."""
    return PerfModel(graph, cluster, database)


def deterministic_fields(result, *, with_estimates_to_best=True):
    """Everything a seeded rerun must reproduce (no wall-clock)."""
    fields = {
        "best_signature": result.best_config.signature(),
        "best_objective": result.best_objective,
        "num_estimates": result.num_estimates,
        "converged": result.converged,
        "partial": result.partial,
        "visited": result.visited_signatures,
        "top": [
            (objective, config.signature())
            for objective, config in result.top_configs
        ],
        "records": [
            (
                record.index,
                record.bottlenecks_tried,
                record.hops_used,
                record.improved,
                record.objective,
                record.best_objective,
            )
            for record in result.trace.records
        ],
    }
    if with_estimates_to_best:
        fields["estimates_to_best"] = result.estimates_to_best
    return fields


def run_strategy(
    strategy, graph, cluster, database, *, stage_count=2, seed=0,
    budget=None, deadline=None,
):
    model = fresh_model(graph, cluster, database)
    searcher = make_searcher(
        strategy, graph, cluster, model, strategy_kwargs={"seed": seed}
    )
    init = balanced_config(graph, cluster, stage_count)
    return searcher.run(
        init,
        budget or SearchBudget(max_iterations=8),
        deadline=deadline,
    )


class TestSeedReproducibility:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_same_seed_reproduces_bit_for_bit(
        self, strategy, tiny_graph, small_cluster, tiny_database
    ):
        first = run_strategy(
            strategy, tiny_graph, small_cluster, tiny_database, seed=3
        )
        second = run_strategy(
            strategy, tiny_graph, small_cluster, tiny_database, seed=3
        )
        assert deterministic_fields(first) == deterministic_fields(second)

    def test_mcmc_seed_changes_the_walk(
        self, tiny_graph, small_cluster, tiny_database
    ):
        runs = {
            seed: run_strategy(
                "mcmc", tiny_graph, small_cluster, tiny_database,
                seed=seed,
            )
            for seed in (0, 1, 2)
        }
        walks = {
            seed: deterministic_fields(run)["records"]
            for seed, run in runs.items()
        }
        assert len({tuple(w) for w in walks.values()}) > 1


class TestAnytimeDeadline:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_expired_deadline_returns_partial_init(
        self, strategy, tiny_graph, small_cluster, tiny_database
    ):
        clock = [0.0]
        deadline = Deadline(0.0, clock=lambda: clock[0])
        result = run_strategy(
            strategy, tiny_graph, small_cluster, tiny_database,
            deadline=deadline,
        )
        assert result.partial is True
        assert result.trace.num_iterations == 0
        init = balanced_config(tiny_graph, small_cluster, 2)
        assert result.best_config.signature() == init.signature()

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_deadline_cut_returns_best_so_far(
        self, strategy, tiny_graph, small_cluster, tiny_database
    ):
        """Trip the deadline right after the first counted iteration."""
        clock = [0.0]
        deadline = Deadline(1.0, clock=lambda: clock[0])
        bus = TelemetryBus()

        def advance(event):
            if event.name == SEARCH_ITERATION:
                clock[0] = 10.0

        bus.add_sink(CallbackSink(advance))
        with using_bus(bus):
            result = run_strategy(
                strategy, tiny_graph, small_cluster, tiny_database,
                budget=SearchBudget(max_iterations=50),
                deadline=deadline,
            )
        assert result.partial is True
        assert result.trace.num_iterations == 1
        assert result.best_config is not None
        assert result.best_objective > 0

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_anytime_prefix_matches_undeadlined_run(
        self, strategy, tiny_graph, small_cluster, tiny_database
    ):
        """The iterations a deadline-cut run applied are a bit-exact
        prefix of the undeadlined run's."""
        full = run_strategy(
            strategy, tiny_graph, small_cluster, tiny_database,
            budget=SearchBudget(max_iterations=6),
        )
        clock = [0.0]
        deadline = Deadline(1.0, clock=lambda: clock[0])
        bus = TelemetryBus()
        seen = [0]

        def advance(event):
            if event.name == SEARCH_ITERATION:
                seen[0] += 1
                if seen[0] >= 3:
                    clock[0] = 10.0

        bus.add_sink(CallbackSink(advance))
        with using_bus(bus):
            cut = run_strategy(
                strategy, tiny_graph, small_cluster, tiny_database,
                budget=SearchBudget(max_iterations=6),
                deadline=deadline,
            )
        full_records = deterministic_fields(full)["records"]
        cut_records = deterministic_fields(cut)["records"]
        assert cut_records == full_records[: len(cut_records)]


class TestCheckpointResume:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_resume_restores_bit_exact_results(
        self, strategy, tiny_graph, small_cluster, tiny_database,
        tmp_path,
    ):
        checkpoint = tmp_path / "contract.ckpt.json"
        model = fresh_model(tiny_graph, small_cluster, tiny_database)
        original = search_all_stage_counts(
            tiny_graph, small_cluster, model,
            stage_counts=(1, 2),
            strategy=strategy,
            budget_per_count={"max_iterations": 3},
            checkpoint_path=checkpoint,
        )
        assert checkpoint.exists()
        resumed = search_all_stage_counts(
            tiny_graph, small_cluster,
            fresh_model(tiny_graph, small_cluster, tiny_database),
            stage_counts=(1, 2),
            strategy=strategy,
            budget_per_count={"max_iterations": 3},
            checkpoint_path=checkpoint,
            resume=True,
        )
        first_by_count = {
            run.num_stages: run.result for run in original.runs
        }
        second_by_count = {
            run.num_stages: run.result for run in resumed.runs
        }
        assert set(first_by_count) == set(second_by_count) == {1, 2}
        # Traces and estimates_to_best are runtime-only (deliberately
        # not checkpointed); every persisted field must round-trip
        # bit-exact.
        checkpointed = (
            "best_signature", "best_objective", "num_estimates",
            "converged", "visited", "top",
        )
        for count in (1, 2):
            first = deterministic_fields(first_by_count[count])
            second = deterministic_fields(second_by_count[count])
            for fieldname in checkpointed:
                assert first[fieldname] == second[fieldname], fieldname

    def test_strategy_mismatch_refuses_resume(
        self, tiny_graph, small_cluster, tiny_database, tmp_path
    ):
        from repro.core import CheckpointError

        checkpoint = tmp_path / "mismatch.ckpt.json"
        search_all_stage_counts(
            tiny_graph, small_cluster,
            fresh_model(tiny_graph, small_cluster, tiny_database),
            stage_counts=(1,),
            strategy="mcmc",
            budget_per_count={"max_iterations": 2},
            checkpoint_path=checkpoint,
        )
        with pytest.raises(CheckpointError, match="strategy"):
            search_all_stage_counts(
                tiny_graph, small_cluster,
                fresh_model(tiny_graph, small_cluster, tiny_database),
                stage_counts=(1,),
                strategy="bandit",
                budget_per_count={"max_iterations": 2},
                checkpoint_path=checkpoint,
                resume=True,
            )


class TestTelemetryWellFormedness:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_event_stream_is_registered_and_complete(
        self, strategy, tiny_graph, small_cluster, tiny_database
    ):
        events = []
        bus = TelemetryBus()
        bus.add_sink(CallbackSink(events.append))
        with using_bus(bus):
            result = run_strategy(
                strategy, tiny_graph, small_cluster, tiny_database
            )
        names = [event.name for event in events]
        assert all(is_registered(name) for name in names), names
        assert SEARCH_BEGIN in names
        assert SEARCH_END in names
        iterations = [
            event for event in events if event.name == SEARCH_ITERATION
        ]
        assert len(iterations) == result.trace.num_iterations
        for event in iterations:
            assert set(ITERATION_ATTRS) <= set(event.attrs), event.attrs
        # The trace rebuilt from the published stream matches the one
        # the result carries — any sink sees what the search saw.
        rebuilt = SearchTrace.from_events(events)
        assert [
            (r.index, r.objective, r.best_objective)
            for r in rebuilt.records
        ] == [
            (r.index, r.objective, r.best_objective)
            for r in result.trace.records
        ]

    def test_mcmc_emits_proposal_stats(
        self, tiny_graph, small_cluster, tiny_database
    ):
        events = []
        bus = TelemetryBus()
        bus.add_sink(CallbackSink(events.append))
        with using_bus(bus):
            run_strategy(
                "mcmc", tiny_graph, small_cluster, tiny_database
            )
        stats = [e for e in events if e.name == SEARCH_STRATEGY_STATS]
        assert len(stats) == 1
        attrs = stats[0].attrs
        assert attrs["proposed"] >= attrs["accepted"]
        assert 0.0 <= attrs["acceptance_rate"] <= 1.0

    def test_bandit_warm_start_round_trips_through_events(
        self, tiny_graph, small_cluster, tiny_database
    ):
        events = []
        bus = TelemetryBus()
        bus.add_sink(CallbackSink(events.append))
        with using_bus(bus):
            run_strategy(
                "bandit", tiny_graph, small_cluster, tiny_database
            )
        arm_events = [
            e for e in events if e.name == SEARCH_STRATEGY_ARM
        ]
        assert arm_events
        warm = warm_start_from_events(events)
        assert warm  # at least one kind learned something
        total_pulls = sum(
            entry[0]
            for arms in warm.values()
            for entry in arms.values()
        )
        assert total_pulls == len(arm_events)

        # A warm-started run is still seed-reproducible and reports it.
        stats_events = []
        bus2 = TelemetryBus()
        bus2.add_sink(CallbackSink(stats_events.append))
        model = fresh_model(tiny_graph, small_cluster, tiny_database)
        searcher = BanditSearcher(
            tiny_graph, small_cluster, model,
            options=BanditOptions(warm_start=warm),
        )
        init = balanced_config(tiny_graph, small_cluster, 2)
        with using_bus(bus2):
            result = searcher.run(init, SearchBudget(max_iterations=8))
        assert result.best_config is not None
        stats = [
            e for e in stats_events
            if e.name == SEARCH_STRATEGY_STATS
        ]
        assert stats[0].attrs["warm_started"] is True


class TestStrategyRegistry:
    def test_all_three_strategies_registered(self):
        assert set(STRATEGIES) <= set(available_strategies())
        assert get_searcher_class("greedy") is AcesoSearch
        assert get_searcher_class("mcmc") is MCMCSearcher
        assert get_searcher_class("bandit") is BanditSearcher

    def test_unknown_strategy_is_typed_ace212(self):
        with pytest.raises(StrategyError, match="unknown search strategy"):
            get_searcher_class("flexflow")
        try:
            get_searcher_class("flexflow")
        except StrategyError as exc:
            assert [d.code for d in exc.diagnostics] == ["ACE212"]

    def test_unknown_strategy_kwarg_is_typed_ace213(self):
        with pytest.raises(StrategyError, match="bogus"):
            build_options("mcmc", {"bogus": 1, "seed": 0})
        try:
            build_options("mcmc", {"bogus": 1, "also_bogus": 2})
        except StrategyError as exc:
            assert [d.code for d in exc.diagnostics] == [
                "ACE213", "ACE213",
            ]
            assert {d.attrs["argument"] for d in exc.diagnostics} == {
                "bogus", "also_bogus",
            }

    def test_budget_kwargs_error_is_typed_ace213(self):
        with pytest.raises(BudgetKwargsError, match="max_iteration"):
            SearchBudget.validate_kwargs({"max_iteration": 5})
        try:
            SearchBudget.validate_kwargs({"max_iteration": 5})
        except BudgetKwargsError as exc:
            assert [d.code for d in exc.diagnostics] == ["ACE213"]

    def test_options_and_kwargs_are_mutually_exclusive(
        self, tiny_graph, small_cluster, tiny_perf_model
    ):
        with pytest.raises(ValueError, match="not both"):
            make_searcher(
                "mcmc", tiny_graph, small_cluster, tiny_perf_model,
                options=MCMCOptions(),
                strategy_kwargs={"seed": 1},
            )

    def test_option_names_cover_every_strategy(self):
        for strategy in STRATEGIES:
            names = strategy_option_names(strategy)
            assert "seed" in names

    def test_register_and_unregister_round_trip(self):
        class StubSearcher(Searcher):
            strategy = "stub-contract-test"

        register_searcher(StubSearcher)
        try:
            assert "stub-contract-test" in available_strategies()
            assert get_searcher_class("stub-contract-test") is StubSearcher
        finally:
            unregister_searcher("stub-contract-test")
        assert "stub-contract-test" not in available_strategies()


# ----------------------------------------------------------------------
# the refactor pin: frozen pre-refactor greedy vs the SearchContext one
# ----------------------------------------------------------------------
def _frozen_update_top(top, objective, config, k):
    signatures = {c.signature() for _, c in top}
    if config.signature() not in signatures:
        top = top + [(objective, config)]
    top.sort(key=lambda pair: pair[0])
    return top[:k]


def frozen_greedy_run(searcher, init_config, budget, *, deadline=None):
    """A frozen copy of the pre-refactor ``AcesoSearch.run`` body.

    Kept verbatim (modulo the telemetry capture, which is irrelevant to
    the compared fields) so the hypothesis property below can assert the
    refactored strategy reproduces it bit-for-bit — same estimate-call
    order, same plans, same traces — on arbitrary configurations.
    """
    from repro.core.bottleneck import rank_bottlenecks
    from repro.core.dedup import UnexploredPool, VisitedSet
    from repro.core.finetune import finetune
    from repro.core.multihop import MultiHopSearcher
    from repro.core.search import SearchResult
    from repro.telemetry import Event, get_bus
    from repro.telemetry.events import (
        SEARCH_BEGIN,
        SEARCH_DEADLINE,
        SEARCH_END,
        SEARCH_ITERATION,
    )

    opts = searcher.options
    perf_model = searcher.perf_model
    bus = get_bus()
    events = []

    def emit(name, **attrs):
        events.append(Event(
            name=name, ts=bus.clock(), pid=bus.pid, source="search",
            attrs=attrs,
        ))

    estimates_start = perf_model.num_estimates
    budget.start(estimates_start)
    rng = (
        None if opts.use_heuristic2
        else np.random.default_rng(opts.seed)
    )

    def should_stop():
        if deadline is not None and deadline.expired():
            return True
        return budget.exhausted(estimates=perf_model.num_estimates)

    visited = VisitedSet()
    unexplored = UnexploredPool()
    multihop = MultiHopSearcher(
        searcher.graph,
        searcher.cluster,
        perf_model,
        max_hops=opts.max_hops,
        rng=rng,
        should_stop=should_stop,
        beam_width=opts.beam_width,
        max_nodes=opts.max_nodes_per_iteration,
        attach_recompute=opts.attach_recompute,
    )

    config = init_config
    best = init_config
    best_objective = perf_model.objective(init_config)
    top = [(best_objective, best)]
    emit(
        SEARCH_BEGIN,
        best_objective=best_objective,
        num_stages=init_config.num_stages,
    )
    iteration = 0
    converged = False
    partial = False

    while not budget.exhausted(
        iterations=iteration, estimates=perf_model.num_estimates
    ):
        if deadline is not None and deadline.expired():
            partial = True
            break
        iteration += 1
        report = perf_model.estimate(config)
        bottlenecks = rank_bottlenecks(report)[: opts.max_bottlenecks]
        result = None
        tried = 0
        for bottleneck in bottlenecks:
            tried += 1
            result = multihop.search(
                config,
                visited=visited,
                unexplored=unexplored,
                bottleneck=bottleneck,
            )
            if result is not None:
                break
        if deadline is not None and deadline.expired():
            iteration -= 1
            partial = True
            break
        if result is not None:
            new_config = result.config
            if opts.enable_finetune:
                scope = None
                if (
                    opts.finetune_dirty_only
                    and result.dirty_stages is not None
                ):
                    new_report = perf_model.estimate(new_config)
                    hot = rank_bottlenecks(new_report)[0].stage
                    scope = sorted(set(result.dirty_stages) | {hot})
                new_config = finetune(
                    new_config,
                    searcher.graph,
                    searcher.cluster,
                    perf_model,
                    max_split_points=opts.finetune_split_points,
                    stages=scope,
                )
            if deadline is not None and deadline.expired():
                iteration -= 1
                partial = True
                break
            objective = perf_model.objective(new_config)
            config = new_config
            if objective < best_objective:
                best, best_objective = new_config, objective
            top = _frozen_update_top(top, objective, new_config, opts.top_k)
            emit(
                SEARCH_ITERATION,
                index=iteration,
                elapsed=budget.elapsed(),
                bottlenecks_tried=tried,
                hops_used=result.hops_used,
                improved=True,
                objective=objective,
                best_objective=best_objective,
            )
        else:
            restart = unexplored.pop_best()
            emit(
                SEARCH_ITERATION,
                index=iteration,
                elapsed=budget.elapsed(),
                bottlenecks_tried=tried,
                hops_used=0,
                improved=False,
                objective=perf_model.objective(config),
                best_objective=best_objective,
            )
            if restart is None:
                converged = True
                break
            config = restart

    if partial:
        emit(
            SEARCH_DEADLINE,
            iterations_completed=iteration,
            elapsed=budget.elapsed(),
            best_objective=best_objective,
        )
    emit(
        SEARCH_END,
        iterations=iteration,
        converged=converged,
        partial=partial,
        best_objective=best_objective,
        num_estimates=perf_model.num_estimates - estimates_start,
    )
    trace = SearchTrace.from_events(events)
    return SearchResult(
        best_config=best,
        best_objective=best_objective,
        best_report=perf_model.estimate(best),
        trace=trace,
        top_configs=top,
        num_estimates=perf_model.num_estimates - estimates_start,
        elapsed_seconds=budget.elapsed(),
        converged=converged,
        visited_signatures=tuple(sorted(visited.signatures())),
        partial=partial,
    )


class TestGreedyBitIdentity:
    @settings(max_examples=12, deadline=None)
    @given(
        stage_count=st.sampled_from([1, 2, 4]),
        iterations=st.integers(min_value=1, max_value=6),
        max_hops=st.integers(min_value=1, max_value=7),
        max_bottlenecks=st.integers(min_value=1, max_value=3),
        enable_finetune=st.booleans(),
        finetune_dirty_only=st.booleans(),
        use_heuristic2=st.booleans(),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_refactored_greedy_matches_frozen_pre_refactor(
        self, tiny_graph, small_cluster, tiny_database,
        stage_count, iterations, max_hops, max_bottlenecks,
        enable_finetune, finetune_dirty_only, use_heuristic2, seed,
    ):
        options = AcesoSearchOptions(
            max_hops=max_hops,
            max_bottlenecks=max_bottlenecks,
            enable_finetune=enable_finetune,
            finetune_dirty_only=finetune_dirty_only,
            use_heuristic2=use_heuristic2,
            seed=seed,
        )
        init = balanced_config(tiny_graph, small_cluster, stage_count)
        budget_kwargs = {"max_iterations": iterations}

        frozen_model = fresh_model(
            tiny_graph, small_cluster, tiny_database
        )
        frozen = frozen_greedy_run(
            AcesoSearch(
                tiny_graph, small_cluster, frozen_model, options=options
            ),
            init,
            SearchBudget(**budget_kwargs),
        )
        current_model = fresh_model(
            tiny_graph, small_cluster, tiny_database
        )
        current = AcesoSearch(
            tiny_graph, small_cluster, current_model, options=options
        ).run(init, SearchBudget(**budget_kwargs))

        # estimates_to_best is a new runtime field the frozen copy
        # never computed; every pre-existing field must match exactly.
        assert deterministic_fields(
            current, with_estimates_to_best=False
        ) == deterministic_fields(frozen, with_estimates_to_best=False)
        # Same estimate-call order => same cache state => same counter.
        assert (
            current_model.num_estimates == frozen_model.num_estimates
        )
