"""Tests for repro.parallel.initializer and .space."""

import numpy as np
import pytest

from repro.cluster import paper_cluster
from repro.parallel import (
    balanced_config,
    config_space_table,
    dp_tp_choices,
    imbalanced_gpu_config,
    imbalanced_op_config,
    is_valid,
    log10_configs_2mech,
    log10_configs_3mech,
    log10_configs_4mech,
    minimum_microbatch_size,
    split_devices,
    split_ops_balanced,
)

from conftest import make_tiny_gpt


class TestSplitDevices:
    def test_even_split(self):
        assert split_devices(8, 2) == [4, 4]
        assert split_devices(8, 8) == [1] * 8

    def test_uneven_split_pow2(self):
        assert split_devices(32, 3) == [8, 8, 16]
        assert split_devices(8, 3) == [2, 2, 4]

    def test_exhaustive_feasibility(self):
        """Every (total, parts) pair yields a valid power-of-two split."""
        for exp in range(6):
            total = 1 << exp
            for parts in range(1, total + 1):
                counts = split_devices(total, parts)
                assert sum(counts) == total
                assert len(counts) == parts
                assert all(c & (c - 1) == 0 for c in counts)

    def test_validation(self):
        with pytest.raises(ValueError):
            split_devices(6, 2)
        with pytest.raises(ValueError):
            split_devices(4, 5)
        with pytest.raises(ValueError):
            split_devices(4, 0)


class TestSplitOps:
    def test_balanced_by_flops(self):
        graph = make_tiny_gpt()
        bounds = split_ops_balanced(graph, 4)
        assert bounds[0] == 0 and bounds[-1] == graph.num_ops
        assert all(b > a for a, b in zip(bounds, bounds[1:]))

    def test_custom_weights(self):
        graph = make_tiny_gpt()
        ones = np.ones(graph.num_ops)
        bounds = split_ops_balanced(graph, 2, weights=ones)
        mid = bounds[1]
        assert abs(mid - graph.num_ops / 2) <= 1

    def test_validation(self):
        graph = make_tiny_gpt()
        with pytest.raises(ValueError):
            split_ops_balanced(graph, 0)
        with pytest.raises(ValueError):
            split_ops_balanced(graph, graph.num_ops + 1)


class TestInitializers:
    @pytest.fixture()
    def graph(self):
        return make_tiny_gpt()

    @pytest.fixture()
    def cluster(self):
        return paper_cluster(4)

    def test_balanced_valid_all_stage_counts(self, graph, cluster):
        for stages in (1, 2, 3, 4):
            config = balanced_config(graph, cluster, stages)
            assert is_valid(config, graph, cluster)
            assert config.num_stages == stages

    def test_minimum_microbatch(self, graph, cluster):
        config = balanced_config(graph, cluster, 2)
        assert config.microbatch_size == minimum_microbatch_size([2, 2])

    def test_balanced_with_tp(self, graph, cluster):
        config = balanced_config(graph, cluster, 2, tp=2)
        assert np.all(config.stages[0].tp == 2)
        assert is_valid(config, graph, cluster)

    def test_imbalanced_op_differs_from_balanced(self, graph, cluster):
        balanced = balanced_config(graph, cluster, 4)
        skewed = imbalanced_op_config(graph, cluster, 4)
        assert is_valid(skewed, graph, cluster)
        assert skewed.summary_tuple() != balanced.summary_tuple()

    def test_imbalanced_op_front_loads(self, graph, cluster):
        skewed = imbalanced_op_config(graph, cluster, 2, skew=5.0)
        balanced = balanced_config(graph, cluster, 2)
        assert skewed.stages[0].num_ops < balanced.stages[0].num_ops

    def test_imbalanced_gpu(self, graph, cluster):
        config = imbalanced_gpu_config(graph, cluster, 3)
        assert is_valid(config, graph, cluster)
        assert config.stages[0].num_devices == 2

    def test_imbalanced_gpu_single_stage_falls_back(self, graph, cluster):
        config = imbalanced_gpu_config(graph, cluster, 1)
        assert config.num_stages == 1

    def test_skew_validation(self, graph, cluster):
        with pytest.raises(ValueError):
            imbalanced_op_config(graph, cluster, 2, skew=0)


class TestConfigSpace:
    def test_dp_tp_choices(self):
        assert dp_tp_choices(16) == 5
        with pytest.raises(ValueError):
            dp_tp_choices(12)

    def test_growth_with_mechanisms(self):
        """Figure 1's key property: more mechanisms, bigger space."""
        for layers in (8, 32, 128):
            two = log10_configs_2mech(layers, 16)
            three = log10_configs_3mech(layers, 16)
            four = log10_configs_4mech(layers, 16)
            assert two < three < four

    def test_growth_with_layers(self):
        values = [log10_configs_4mech(n, 16) for n in (8, 32, 128, 1024)]
        assert values == sorted(values)

    def test_table_structure(self):
        table = config_space_table([8, 16], num_gpus=16)
        assert set(table) == {
            "layers", "2 mechanisms", "3 mechanisms", "4 mechanisms"
        }
        assert len(table["2 mechanisms"]) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            log10_configs_2mech(0, 16)
