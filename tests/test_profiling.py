"""Tests for repro.profiling: cost functions, database, profiler."""

import numpy as np
import pytest

from repro.cluster import paper_cluster, v100
from repro.ir.ops import layernorm_op, matmul_op
from repro.profiling import (
    ProfileDatabase,
    ProfiledGraph,
    SimulatedProfiler,
    effective_tp,
    op_bwd_time,
    op_fwd_time,
    op_signature,
    option_bias,
    tp_efficiency,
    tp_level_index,
    tp_levels,
)

from conftest import make_tiny_gpt


class TestCostFunctions:
    def test_effective_tp_clamped(self):
        ln = layernorm_op("ln", 32, 64)
        assert effective_tp(ln, 8) == 1
        mm = matmul_op("m", 64, 64, 32)
        assert effective_tp(mm, 8) == 8

    def test_effective_tp_validates(self):
        with pytest.raises(ValueError):
            effective_tp(matmul_op("m", 4, 4, 2), 0)

    def test_tp_efficiency_decreases(self):
        assert tp_efficiency(1) == 1.0
        assert tp_efficiency(8) < tp_efficiency(2)

    def test_fwd_time_scales_down_with_tp(self):
        op = matmul_op("m", 1024, 1024, 512)
        device = v100()
        t1 = op_fwd_time(op, device, "fp16", 8, 1)
        t4 = op_fwd_time(op, device, "fp16", 8, 4)
        assert t4 < t1
        # But not perfectly (efficiency penalty + overhead).
        assert t4 > t1 / 4

    def test_bwd_slower_than_fwd(self):
        op = matmul_op("m", 1024, 1024, 512)
        device = v100()
        assert op_bwd_time(op, device, "fp16", 8, 1) > op_fwd_time(
            op, device, "fp16", 8, 1
        )

    def test_negative_samples_raise(self):
        op = matmul_op("m", 4, 4, 2)
        with pytest.raises(ValueError):
            op_fwd_time(op, v100(), "fp16", -1, 1)

    def test_option_bias_deterministic_and_small(self):
        op = matmul_op("m", 64, 64, 32)
        b0 = option_bias(op, 0)
        b1 = option_bias(op, 1)
        assert b0 == option_bias(op, 0)
        assert 0.95 < b0 < 1.05
        assert 0.95 < b1 < 1.05

    def test_signature_stable_and_name_independent(self):
        a = matmul_op("alpha", 64, 64, 32)
        b = matmul_op("beta", 64, 64, 32)
        assert op_signature(a) == op_signature(b)
        c = matmul_op("gamma", 64, 128, 32)
        assert op_signature(a) != op_signature(c)


class TestLevels:
    def test_tp_level_index(self):
        assert tp_level_index(1) == 0
        assert tp_level_index(8) == 3

    def test_tp_level_index_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            tp_level_index(3)
        with pytest.raises(ValueError):
            tp_level_index(0)

    def test_tp_levels(self):
        assert tp_levels(8) == [1, 2, 4, 8]
        assert tp_levels(1) == [1]
        with pytest.raises(ValueError):
            tp_levels(0)


class TestProfiler:
    def test_dedupes_repeated_ops(self, tiny_graph, tiny_database):
        # A 4-layer GPT has far fewer unique signatures than ops.
        assert tiny_database.num_ops < tiny_graph.num_ops
        assert tiny_database.num_ops >= 8

    def test_collectives_profiled(self, tiny_database):
        for kind in ("allreduce", "allgather", "p2p_intra", "p2p_inter"):
            assert kind in tiny_database.collectives

    def test_collective_time_monotone(self, tiny_database):
        profile = tiny_database.collective("allreduce")
        assert profile.time(2 << 20, 4) > profile.time(1 << 20, 4)
        assert profile.time(1 << 20, 1) == 0.0

    def test_profile_reuse_skips_existing(self, tiny_graph, small_cluster):
        profiler = SimulatedProfiler(small_cluster, seed=0)
        db = profiler.profile(tiny_graph)
        before = profiler.profile_seconds
        profiler.profile(tiny_graph, database=db)
        assert profiler.profile_seconds == before  # nothing re-measured

    def test_precision_mismatch_raises(self, tiny_graph, small_cluster):
        db = ProfileDatabase(max_tp=4, precision="fp32")
        with pytest.raises(ValueError):
            SimulatedProfiler(small_cluster).profile(tiny_graph, database=db)

    def test_deterministic_across_runs(self, tiny_graph, small_cluster):
        db1 = SimulatedProfiler(small_cluster, seed=7).profile(tiny_graph)
        db2 = SimulatedProfiler(small_cluster, seed=7).profile(tiny_graph)
        sig = next(iter(db1.ops))
        np.testing.assert_array_equal(
            db1.ops[sig].fwd_slope, db2.ops[sig].fwd_slope
        )

    def test_noise_changes_with_seed(self, tiny_graph, small_cluster):
        db1 = SimulatedProfiler(small_cluster, seed=1).profile(tiny_graph)
        db2 = SimulatedProfiler(small_cluster, seed=2).profile(tiny_graph)
        sig = next(iter(db1.ops))
        assert not np.array_equal(
            db1.ops[sig].fwd_slope, db2.ops[sig].fwd_slope
        )

    def test_fit_close_to_truth(self, tiny_graph, small_cluster):
        db = SimulatedProfiler(small_cluster, seed=0).profile(tiny_graph)
        from repro.profiling.cost import op_fwd_time

        op = tiny_graph.ops[tiny_graph.op_index("layer0.mlp_fc1")]
        record = db.lookup(op_signature(op))
        true = op_fwd_time(op, small_cluster.device, "fp16", 4, 1)
        fitted = record.fwd_fixed[0, 0] + 4 * record.fwd_slope[0, 0]
        assert fitted == pytest.approx(true, rel=0.1)

    def test_validation(self, small_cluster):
        with pytest.raises(ValueError):
            SimulatedProfiler(small_cluster, repeats=0)
        with pytest.raises(ValueError):
            SimulatedProfiler(small_cluster, noise=-0.1)


class TestDatabase:
    def test_save_load_roundtrip(self, tiny_database, tmp_path):
        path = tmp_path / "profile.json"
        tiny_database.save(path)
        loaded = ProfileDatabase.load(path)
        assert loaded.max_tp == tiny_database.max_tp
        assert loaded.precision == tiny_database.precision
        assert set(loaded.ops) == set(tiny_database.ops)
        sig = next(iter(tiny_database.ops))
        np.testing.assert_allclose(
            loaded.ops[sig].fwd_fixed, tiny_database.ops[sig].fwd_fixed
        )
        np.testing.assert_allclose(
            loaded.collectives["allreduce"].latency,
            tiny_database.collectives["allreduce"].latency,
        )

    def test_lookup_missing_raises(self, tiny_database):
        with pytest.raises(KeyError):
            tiny_database.lookup("not-a-signature")
        with pytest.raises(KeyError):
            tiny_database.collective("alltoall")

    def test_profiled_graph_shapes(self, tiny_graph, tiny_database):
        pg = ProfiledGraph(tiny_graph, tiny_database)
        assert pg.fwd_fixed.shape[0] == tiny_graph.num_ops
        assert pg.num_tp_levels == tp_level_index(tiny_database.max_tp) + 1

    def test_profiled_graph_immutable(self, tiny_graph, tiny_database):
        pg = ProfiledGraph(tiny_graph, tiny_database)
        with pytest.raises(ValueError):
            pg.fwd_fixed[0, 0, 0] = 1.0

    def test_collective_group_too_big_raises(self, tiny_database):
        profile = tiny_database.collective("allreduce")
        with pytest.raises(ValueError):
            profile.time(1 << 20, 64)
