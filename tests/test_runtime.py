"""Tests for the ground-truth runtime: schedule, allocator, simulator,
executor."""

import numpy as np
import pytest

from repro.parallel import balanced_config
from repro.runtime import (
    BACKWARD,
    FORWARD,
    CachingAllocator,
    Executor,
    full_schedule,
    max_in_flight,
    replay_transients,
    simulate_pipeline,
    stage_schedule,
)


class TestSchedule:
    def test_1f1b_order_first_stage(self):
        tasks = stage_schedule(0, 2, 3)
        text = [f"{t.direction}{t.microbatch}" for t in tasks]
        assert text == ["F0", "F1", "B0", "F2", "B1", "B2"]

    def test_last_stage_no_warmup(self):
        tasks = stage_schedule(1, 2, 3)
        text = [f"{t.direction}{t.microbatch}" for t in tasks]
        assert text == ["F0", "B0", "F1", "B1", "F2", "B2"]

    def test_every_microbatch_runs_once_each_direction(self):
        for stage in range(4):
            tasks = stage_schedule(stage, 4, 8)
            fwd = [t.microbatch for t in tasks if t.direction == FORWARD]
            bwd = [t.microbatch for t in tasks if t.direction == BACKWARD]
            assert sorted(fwd) == list(range(8))
            assert sorted(bwd) == list(range(8))

    def test_backward_never_precedes_forward(self):
        for stage in range(4):
            done = set()
            for task in stage_schedule(stage, 4, 8):
                if task.direction == BACKWARD:
                    assert task.microbatch in done
                else:
                    done.add(task.microbatch)

    def test_max_in_flight_matches_eq1(self):
        for p in (1, 2, 4, 8):
            for i in range(p):
                assert max_in_flight(i, p, 100) == p - i

    def test_max_in_flight_capped(self):
        assert max_in_flight(0, 8, 2) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            stage_schedule(2, 2, 4)
        with pytest.raises(ValueError):
            stage_schedule(0, 2, 0)

    def test_full_schedule(self):
        schedules = full_schedule(3, 5)
        assert len(schedules) == 3
        assert all(len(s) == 10 for s in schedules)


class TestAllocator:
    def test_reuse_keeps_reserved_flat(self):
        allocator = CachingAllocator()
        h1 = allocator.malloc(10 << 20)
        allocator.free(h1)
        h2 = allocator.malloc(10 << 20)
        assert allocator.reserved_bytes == allocator._rounded(10 << 20)
        allocator.free(h2)

    def test_growth_without_reuse(self):
        allocator = CachingAllocator()
        allocator.malloc(10 << 20)
        allocator.malloc(10 << 20)
        assert allocator.reserved_bytes == 2 * allocator._rounded(10 << 20)

    def test_no_reuse_of_oversized_blocks(self):
        allocator = CachingAllocator(reuse_ratio=2.0)
        big = allocator.malloc(64 << 20)
        allocator.free(big)
        allocator.malloc(1 << 20)  # too small to reuse the 64MB block
        assert allocator.reserved_bytes > allocator._rounded(64 << 20)

    def test_double_free_raises(self):
        allocator = CachingAllocator()
        handle = allocator.malloc(1)
        allocator.free(handle)
        with pytest.raises(KeyError):
            allocator.free(handle)

    def test_validation(self):
        with pytest.raises(ValueError):
            CachingAllocator(block_bytes=0)
        with pytest.raises(ValueError):
            CachingAllocator(reuse_ratio=0.5)
        with pytest.raises(ValueError):
            CachingAllocator().malloc(-1)

    def test_replay_transients_roughly_peak(self):
        sizes = [1 << 20, 8 << 20, 2 << 20, 8 << 20]
        reserved = replay_transients(sizes)
        # At least the two largest concurrent allocations.
        assert reserved >= (8 << 20)


class TestSimulator:
    def test_homogeneous_matches_closed_form(self):
        p, n, f, b = 4, 16, 2.0, 3.0
        result = simulate_pipeline([f] * p, [b] * p, n)
        assert result.makespan == pytest.approx(
            (p - 1) * (f + b) + n * (f + b)
        )

    def test_single_stage_no_bubble(self):
        result = simulate_pipeline([1.0], [1.0], 10)
        assert result.makespan == pytest.approx(20.0)
        assert result.bubble_fraction == pytest.approx(0.0)

    def test_bubble_grows_with_imbalance(self):
        even = simulate_pipeline([1.0, 1.0], [1.0, 1.0], 8)
        skew = simulate_pipeline([1.0, 3.0], [1.0, 3.0], 8)
        assert skew.bubble_fraction > even.bubble_fraction

    def test_p2p_delays_downstream(self):
        free = simulate_pipeline([1.0, 1.0], [1.0, 1.0], 4)
        slow = simulate_pipeline(
            [1.0, 1.0], [1.0, 1.0], 4, p2p_times=[0.5]
        )
        assert slow.makespan > free.makespan

    def test_dp_sync_extends_finish(self):
        base = simulate_pipeline([1.0, 1.0], [1.0, 1.0], 4)
        synced = simulate_pipeline(
            [1.0, 1.0], [1.0, 1.0], 4, dp_sync_times=[2.0, 0.0]
        )
        assert synced.makespan >= base.makespan

    def test_matrix_durations(self):
        fwd = np.ones((2, 4))
        bwd = np.ones((2, 4)) * 2
        result = simulate_pipeline(fwd, bwd, 4)
        assert result.makespan > 0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            simulate_pipeline(np.ones((2, 3)), np.ones((2, 4)), 4)
        with pytest.raises(ValueError):
            simulate_pipeline([1.0, 1.0], [1.0, 1.0], 4, p2p_times=[1.0, 2.0])
        with pytest.raises(ValueError):
            simulate_pipeline([1.0], [1.0], 4, dp_sync_times=[1.0, 2.0])

    def test_stage_busy_reported(self):
        result = simulate_pipeline([1.0, 2.0], [1.0, 2.0], 4)
        assert result.stage_busy[1] == pytest.approx(16.0)


class TestExecutor:
    def test_run_structure(self, tiny_graph, small_cluster, tiny_executor,
                           tiny_config):
        result = tiny_executor.run(tiny_config)
        assert result.iteration_time > 0
        assert len(result.stage_peak_memory) == tiny_config.num_stages
        assert not result.oom
        assert 0 <= result.bubble_fraction < 1
        assert result.throughput(tiny_graph.global_batch_size) > 0

    def test_deterministic_per_config(self, tiny_executor, tiny_config):
        a = tiny_executor.run(tiny_config)
        b = tiny_executor.run(tiny_config.clone())
        assert a.iteration_time == b.iteration_time
        assert a.stage_peak_memory == b.stage_peak_memory

    def test_noise_varies_across_configs(self, tiny_executor, tiny_config):
        other = tiny_config.clone()
        other.microbatch_size *= 2
        a = tiny_executor.run(tiny_config)
        b = tiny_executor.run(other)
        assert a.iteration_time != b.iteration_time

    def test_actual_close_to_predicted(
        self, tiny_perf_model, tiny_executor, tiny_config
    ):
        predicted = tiny_perf_model.estimate(tiny_config)
        actual = tiny_executor.run(tiny_config)
        error = abs(
            predicted.iteration_time - actual.iteration_time
        ) / actual.iteration_time
        assert error < 0.25

    def test_oom_throughput_zero(self, tiny_graph):
        from conftest import make_tight_cluster

        cluster = make_tight_cluster(num_gpus=4, memory_mb=1)
        executor = Executor(tiny_graph, cluster)
        config = balanced_config(tiny_graph, cluster, 2)
        result = executor.run(config)
        assert result.oom
        assert result.throughput(tiny_graph.global_batch_size) == 0.0

    def test_noise_validation(self, tiny_graph, small_cluster):
        with pytest.raises(ValueError):
            Executor(tiny_graph, small_cluster, noise=-0.1)
