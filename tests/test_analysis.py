"""Tests for repro.analysis: metrics and the comparison harness."""

import pytest

from repro.analysis import (
    compare_systems,
    geometric_mean,
    mean_abs_pct_error,
    normalize,
    speedup,
    tflops_per_gpu,
)

from conftest import make_tiny_gpt


class TestMetrics:
    def test_tflops_formula(self):
        graph = make_tiny_gpt()
        value = tflops_per_gpu(graph, throughput=10.0, num_gpus=2)
        expected = graph.total_train_flops_per_sample * 10.0 / 2 / 1e12
        assert value == pytest.approx(expected)

    def test_tflops_validation(self):
        graph = make_tiny_gpt()
        with pytest.raises(ValueError):
            tflops_per_gpu(graph, 1.0, 0)
        with pytest.raises(ValueError):
            tflops_per_gpu(graph, -1.0, 1)

    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0
        assert speedup(1.0, 0.0) == float("inf")
        assert speedup(0.0, 0.0) == 1.0

    def test_normalize(self):
        assert normalize([1.0, 2.0, 4.0]) == [0.25, 0.5, 1.0]
        assert normalize([0.0, 0.0]) == [0.0, 0.0]

    def test_mean_abs_pct_error(self):
        assert mean_abs_pct_error([1.1, 0.9], [1.0, 1.0]) == pytest.approx(
            10.0
        )
        with pytest.raises(ValueError):
            mean_abs_pct_error([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            mean_abs_pct_error([], [])
        with pytest.raises(ValueError):
            mean_abs_pct_error([1.0], [0.0])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])


class TestCompareSystems:
    @pytest.fixture(scope="class")
    def comparison(self, small_cluster):
        # Uses a real (small) GPT so the registry path is exercised.
        return compare_systems(
            "gpt3-350m",
            4,
            cluster=small_cluster,
            aceso_iterations=6,
            pick_top_k=2,
        )

    def test_all_systems_present(self, comparison):
        assert set(comparison.outcomes) == {"megatron", "alpa", "aceso"}

    def test_all_feasible(self, comparison):
        for outcome in comparison.outcomes.values():
            assert not outcome.failed
            assert not outcome.oom
            assert outcome.throughput > 0
            assert outcome.tflops > 0

    def test_aceso_not_worse(self, comparison):
        """Aceso's space strictly contains both baselines' spaces, so
        with enough iterations it should never lose badly."""
        assert comparison.speedup("aceso", "megatron") > 0.9
        assert comparison.speedup("aceso", "alpa") > 0.9

    def test_search_cost_ordering(self, comparison):
        """Aceso's search cost is a small fraction of Alpa's (Fig. 8)."""
        aceso = comparison.outcomes["aceso"].search_seconds
        alpa = comparison.outcomes["alpa"].search_seconds
        assert aceso < 0.5 * alpa

    def test_subset_of_systems(self, small_cluster):
        result = compare_systems(
            "gpt3-350m", 4, cluster=small_cluster,
            aceso_iterations=2, systems=["megatron"],
        )
        assert set(result.outcomes) == {"megatron"}
