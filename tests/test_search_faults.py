"""Fault injection, crash-safe search, and elastic re-planning."""

import json
import os
import time

import pytest

from repro.core import (
    AcesoSearch,
    CheckpointError,
    Deadline,
    SearchBudget,
    SearchCheckpoint,
    SearchFailedError,
    retry_delay,
    search_all_stage_counts,
)
from repro.core.search import _failure_kind_from_error, _stage_count_worker
from repro.faults import (
    DeviceFailure,
    FaultPlan,
    LinkDegradation,
    StragglerSlowdown,
    TransientOOM,
    adapt_config,
    degrade_cluster,
    elastic_replan,
    random_fault_plan,
    shrink_cluster,
)
from repro.perfmodel import PerfModel
from repro.profiling import SimulatedProfiler
from repro.runtime.simulator import simulate_pipeline

BUDGET = {"max_iterations": 6}


def fresh_model(graph, cluster, database):
    return PerfModel(graph, cluster, database)


class TestFaultPlan:
    def test_empty_plan_is_empty(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(
            stragglers=(StragglerSlowdown(device_id=0, factor=2.0),)
        ).is_empty

    def test_first_failure_respects_device_span(self):
        plan = FaultPlan(
            device_failures=(
                DeviceFailure(device_id=6, time=0.1),
                DeviceFailure(device_id=1, time=0.5),
            )
        )
        # A 4-device config never sees device 6's (earlier) failure.
        assert plan.first_failure(4).device_id == 1
        assert plan.first_failure(8).device_id == 6
        assert plan.first_failure(1) is None

    def test_compound_factors(self):
        plan = FaultPlan(
            stragglers=(
                StragglerSlowdown(device_id=2, factor=1.5),
                StragglerSlowdown(device_id=2, factor=2.0),
            ),
            link_degradations=(
                LinkDegradation(scope="inter", factor=0.5),
                LinkDegradation(scope="inter", factor=0.5),
            ),
        )
        assert plan.straggler_factor(2) == pytest.approx(3.0)
        assert plan.straggler_factor(0) == 1.0
        assert plan.bandwidth_factor("inter") == pytest.approx(0.25)
        assert plan.bandwidth_factor("intra") == 1.0

    def test_json_round_trip(self, tmp_path):
        plan = random_fault_plan(8, seed=3, failure_rate=0.5)
        path = tmp_path / "faults.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_rejects_unknown_format_version(self):
        with pytest.raises(ValueError, match="format version"):
            FaultPlan.from_dict({"format_version": 99})

    def test_rng_is_reproducible_per_key(self):
        plan = FaultPlan(seed=11)
        a = plan.rng_for("key").random(4)
        b = plan.rng_for("key").random(4)
        c = plan.rng_for("other").random(4)
        assert (a == b).all()
        assert (a != c).any()

    def test_validation(self):
        with pytest.raises(ValueError):
            StragglerSlowdown(device_id=0, factor=0.5)
        with pytest.raises(ValueError):
            LinkDegradation(scope="bogus", factor=0.5)
        with pytest.raises(ValueError):
            TransientOOM(stage=0, probability=1.5, stall_seconds=0.0)


class TestInjection:
    def test_degrade_cluster_scales_bandwidth(self, small_cluster):
        plan = FaultPlan(
            link_degradations=(
                LinkDegradation(scope="intra", factor=0.5),
            )
        )
        degraded = degrade_cluster(small_cluster, plan)
        assert degraded.intra_node.bandwidth == pytest.approx(
            small_cluster.intra_node.bandwidth * 0.5
        )
        assert degraded.inter_node.bandwidth == pytest.approx(
            small_cluster.inter_node.bandwidth
        )
        # No degradation -> identical object, so the executor can skip
        # rebuilding its collective model.
        assert degrade_cluster(small_cluster, FaultPlan()) is small_cluster

    def test_shrink_snaps_to_power_of_two(self, small_cluster):
        shrunk = shrink_cluster(small_cluster, [1])
        assert shrunk.num_gpus == 2
        assert shrink_cluster(small_cluster, [0, 1, 2]).num_gpus == 1
        with pytest.raises(ValueError):
            shrink_cluster(small_cluster, [0, 1, 2, 3])

    def test_adapt_config_shrinks_stagewise(
        self, tiny_graph, small_cluster, tiny_config
    ):
        shrunk = shrink_cluster(small_cluster, [3])
        adapted = adapt_config(tiny_config, tiny_graph, shrunk)
        assert adapted is not None
        assert adapted.total_devices == shrunk.num_gpus
        assert adapted.num_stages == tiny_config.num_stages
        assert adapted.microbatch_size == tiny_config.microbatch_size

    def test_adapt_config_refuses_too_deep_pipelines(
        self, tiny_graph, small_cluster
    ):
        from repro.parallel import balanced_config

        config = balanced_config(tiny_graph, small_cluster, 4)
        one_gpu = shrink_cluster(small_cluster, [1, 2, 3])
        # 4 stages cannot fit one device: each stage already has 1.
        assert adapt_config(config, tiny_graph, one_gpu) is None


class TestSimulatorHalt:
    def test_halt_truncates_iteration(self):
        import numpy as np

        fwd = np.full((2, 4), 1.0)
        bwd = np.full((2, 4), 1.0)
        full = simulate_pipeline(fwd, bwd, 4)
        halted = simulate_pipeline(fwd, bwd, 4, halt_at=full.makespan / 2)
        assert halted.halted
        assert halted.makespan == pytest.approx(full.makespan / 2)
        assert 0 < halted.tasks_completed < halted.tasks_total
        assert not full.halted
        assert full.tasks_completed == full.tasks_total

    def test_halt_at_zero_completes_nothing(self):
        import numpy as np

        fwd = np.full((1, 2), 1.0)
        bwd = np.full((1, 2), 1.0)
        halted = simulate_pipeline(fwd, bwd, 2, halt_at=0.0)
        assert halted.halted
        assert halted.tasks_completed == 0


class TestExecutorFaults:
    def test_empty_plan_matches_healthy_run(self, tiny_executor, tiny_config):
        healthy = tiny_executor.run(tiny_config)
        empty = tiny_executor.run(tiny_config, fault_plan=FaultPlan())
        assert empty.iteration_time == healthy.iteration_time
        assert empty.completed and not empty.degraded

    def test_fixed_seed_faults_are_deterministic(
        self, tiny_executor, tiny_config
    ):
        plan = FaultPlan(
            seed=5,
            stragglers=(StragglerSlowdown(device_id=0, factor=1.7),),
            transient_ooms=(
                TransientOOM(stage=0, probability=0.5, stall_seconds=0.01),
            ),
        )
        first = tiny_executor.run(tiny_config, fault_plan=plan)
        second = tiny_executor.run(tiny_config, fault_plan=plan)
        assert first == second
        assert first.degraded

    def test_straggler_slows_iteration(self, tiny_executor, tiny_config):
        healthy = tiny_executor.run(tiny_config)
        slow = tiny_executor.run(
            tiny_config,
            fault_plan=FaultPlan(
                stragglers=(StragglerSlowdown(device_id=0, factor=2.0),)
            ),
        )
        assert slow.degraded
        assert slow.iteration_time > healthy.iteration_time

    def test_link_degradation_slows_iteration(
        self, tiny_executor, tiny_config
    ):
        healthy = tiny_executor.run(tiny_config)
        slow = tiny_executor.run(
            tiny_config,
            fault_plan=FaultPlan(
                link_degradations=(
                    LinkDegradation(scope="intra", factor=0.25),
                    LinkDegradation(scope="inter", factor=0.25),
                )
            ),
        )
        assert slow.degraded
        assert slow.iteration_time > healthy.iteration_time

    def test_device_failure_halts_run(self, tiny_executor, tiny_config):
        healthy = tiny_executor.run(tiny_config)
        plan = FaultPlan(
            device_failures=(
                DeviceFailure(
                    device_id=0, time=healthy.iteration_time / 2
                ),
            )
        )
        failed = tiny_executor.run(tiny_config, fault_plan=plan)
        assert not failed.completed
        assert failed.failed_device == 0
        assert failed.failure_time <= healthy.iteration_time / 2
        assert failed.tasks_completed < failed.tasks_total
        assert failed.throughput(1024) == 0.0
        # Same plan, same result: the halt is deterministic.
        assert tiny_executor.run(tiny_config, fault_plan=plan) == failed

    def test_failure_outside_device_span_is_ignored(
        self, tiny_executor, tiny_config
    ):
        plan = FaultPlan(
            device_failures=(DeviceFailure(device_id=63, time=0.0),)
        )
        run = tiny_executor.run(tiny_config, fault_plan=plan)
        assert run.completed


class TestCrashSafeDriver:
    def test_raising_worker_leaves_partial_result(
        self, tiny_graph, small_cluster, tiny_database
    ):
        def raises_on_two(payload):
            if payload[3] == 2:
                raise RuntimeError("injected fault")
            return _stage_count_worker(payload)

        result = search_all_stage_counts(
            tiny_graph,
            small_cluster,
            fresh_model(tiny_graph, small_cluster, tiny_database),
            budget_per_count=BUDGET,
            workers=2,
            max_retries=1,
            retry_backoff=0.01,
            _worker_fn=raises_on_two,
        )
        assert [run.num_stages for run in result.runs] == [1, 4]
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.num_stages == 2
        assert failure.attempts == 2  # initial + one retry
        assert "RuntimeError: injected fault" in failure.error
        assert result.best.best_objective > 0

    def test_hanging_worker_is_killed_and_recorded(
        self, tiny_graph, small_cluster, tiny_database
    ):
        def hangs_on_one(payload):
            if payload[3] == 1:
                time.sleep(60)
            return _stage_count_worker(payload)

        result = search_all_stage_counts(
            tiny_graph,
            small_cluster,
            fresh_model(tiny_graph, small_cluster, tiny_database),
            budget_per_count=BUDGET,
            workers=2,
            timeout_per_count=1.0,
            max_retries=0,
            _worker_fn=hangs_on_one,
        )
        assert [run.num_stages for run in result.runs] == [2, 4]
        assert len(result.failures) == 1
        assert result.failures[0].num_stages == 1
        assert "timed out" in result.failures[0].error

    def test_killed_worker_is_recorded_with_exit_code(
        self, tiny_graph, small_cluster, tiny_database
    ):
        def dies_on_four(payload):
            if payload[3] == 4:
                os._exit(41)
            return _stage_count_worker(payload)

        result = search_all_stage_counts(
            tiny_graph,
            small_cluster,
            fresh_model(tiny_graph, small_cluster, tiny_database),
            budget_per_count=BUDGET,
            workers=2,
            max_retries=0,
            _worker_fn=dies_on_four,
        )
        assert [run.num_stages for run in result.runs] == [1, 2]
        assert "exit code 41" in result.failures[0].error

    def test_retried_count_converges_to_same_best(
        self, tiny_graph, small_cluster, tiny_database, tmp_path
    ):
        marker = tmp_path / "already-failed-once"

        def flaky_once(payload):
            if payload[3] == 2 and not marker.exists():
                marker.write_text("crashed")
                raise RuntimeError("transient")
            return _stage_count_worker(payload)

        flaky = search_all_stage_counts(
            tiny_graph,
            small_cluster,
            fresh_model(tiny_graph, small_cluster, tiny_database),
            budget_per_count=BUDGET,
            workers=2,
            max_retries=1,
            retry_backoff=0.01,
            _worker_fn=flaky_once,
        )
        clean = search_all_stage_counts(
            tiny_graph,
            small_cluster,
            fresh_model(tiny_graph, small_cluster, tiny_database),
            budget_per_count=BUDGET,
        )
        assert not flaky.failures
        assert [run.num_stages for run in flaky.runs] == [
            run.num_stages for run in clean.runs
        ]
        assert flaky.best.best_objective == clean.best.best_objective

    def test_all_failed_raises_named_error(
        self, tiny_graph, small_cluster, tiny_database
    ):
        def always_raises(payload):
            raise RuntimeError("nothing works")

        result = search_all_stage_counts(
            tiny_graph,
            small_cluster,
            fresh_model(tiny_graph, small_cluster, tiny_database),
            budget_per_count=BUDGET,
            workers=2,
            max_retries=0,
            _worker_fn=always_raises,
        )
        assert not result.runs
        assert [f.num_stages for f in result.failures] == [1, 2, 4]
        with pytest.raises(SearchFailedError, match=r"\[1, 2, 4\]"):
            result.best
        with pytest.raises(SearchFailedError):
            result.parallel_seconds

    def test_serial_path_records_failures_too(
        self, tiny_graph, small_cluster, tiny_database, monkeypatch
    ):
        import repro.core.search as search_module

        real = search_module.balanced_config

        def broken_for_two(graph, cluster, count):
            if count == 2:
                raise RuntimeError("bad init")
            return real(graph, cluster, count)

        monkeypatch.setattr(
            search_module, "balanced_config", broken_for_two
        )
        result = search_all_stage_counts(
            tiny_graph,
            small_cluster,
            fresh_model(tiny_graph, small_cluster, tiny_database),
            budget_per_count=BUDGET,
            max_retries=1,
            retry_backoff=0.0,
        )
        assert [run.num_stages for run in result.runs] == [1, 4]
        assert result.failures[0].num_stages == 2
        assert result.failures[0].attempts == 2

    def test_bad_budget_key_fails_before_forking(
        self, tiny_graph, small_cluster, tiny_perf_model
    ):
        with pytest.raises(ValueError, match="max_iteration"):
            search_all_stage_counts(
                tiny_graph,
                small_cluster,
                tiny_perf_model,
                budget_per_count={"max_iteration": 5},
                workers=4,
            )

    def test_estimate_totals_match_serial_vs_parallel(
        self, tiny_graph, small_cluster, tiny_database
    ):
        serial = search_all_stage_counts(
            tiny_graph,
            small_cluster,
            fresh_model(tiny_graph, small_cluster, tiny_database),
            budget_per_count=BUDGET,
        )
        parallel = search_all_stage_counts(
            tiny_graph,
            small_cluster,
            fresh_model(tiny_graph, small_cluster, tiny_database),
            budget_per_count=BUDGET,
            workers=2,
        )
        assert serial.num_estimates == parallel.num_estimates
        assert serial.best.best_objective == parallel.best.best_objective


class TestCheckpointResume:
    def test_interrupted_search_resumes_bit_exactly(
        self, tiny_graph, small_cluster, tiny_database, tmp_path
    ):
        path = tmp_path / "search.ckpt.json"

        def dies_on_four(payload):
            if payload[3] == 4:
                os._exit(1)
            return _stage_count_worker(payload)

        # Uninterrupted reference run.
        clean = search_all_stage_counts(
            tiny_graph,
            small_cluster,
            fresh_model(tiny_graph, small_cluster, tiny_database),
            budget_per_count=BUDGET,
        )
        # "Crash": stage count 4 dies; 1 and 2 land in the checkpoint.
        partial = search_all_stage_counts(
            tiny_graph,
            small_cluster,
            fresh_model(tiny_graph, small_cluster, tiny_database),
            budget_per_count=BUDGET,
            workers=2,
            max_retries=0,
            checkpoint_path=path,
            _worker_fn=dies_on_four,
        )
        assert [run.num_stages for run in partial.runs] == [1, 2]
        on_disk = json.loads(path.read_text())
        assert sorted(on_disk["completed"]) == ["1", "2"]
        assert on_disk["failures"][0]["num_stages"] == 4

        # Resume with a healthy worker: only count 4 searches again.
        model = fresh_model(tiny_graph, small_cluster, tiny_database)
        resumed = search_all_stage_counts(
            tiny_graph,
            small_cluster,
            model,
            budget_per_count=BUDGET,
            workers=2,
            checkpoint_path=path,
            resume=True,
        )
        assert not resumed.failures
        assert [run.num_stages for run in resumed.runs] == [1, 2, 4]
        assert resumed.best.best_objective == clean.best.best_objective
        assert resumed.best.best_config.signature() == (
            clean.best.best_config.signature()
        )
        # The resumed run only spent estimates on the missing count.
        count_four = next(
            run for run in clean.runs if run.num_stages == 4
        )
        restored = sum(
            run.result.num_estimates
            for run in clean.runs
            if run.num_stages != 4
        )
        assert resumed.num_estimates == restored + count_four.result.num_estimates

    def test_resume_refuses_mismatched_budget(
        self, tiny_graph, small_cluster, tiny_database, tmp_path
    ):
        path = tmp_path / "search.ckpt.json"
        search_all_stage_counts(
            tiny_graph,
            small_cluster,
            fresh_model(tiny_graph, small_cluster, tiny_database),
            budget_per_count=BUDGET,
            checkpoint_path=path,
        )
        with pytest.raises(CheckpointError, match="budget"):
            search_all_stage_counts(
                tiny_graph,
                small_cluster,
                fresh_model(tiny_graph, small_cluster, tiny_database),
                budget_per_count={"max_iterations": 99},
                checkpoint_path=path,
                resume=True,
            )

    def test_checkpoint_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(CheckpointError, match="format version"):
            SearchCheckpoint.load(path)


class TestRetryJitter:
    def test_schedule_is_deterministic_and_bounded(self):
        for count in (1, 2, 4):
            for attempt in (0, 1, 2):
                delay = retry_delay(0.5, count, attempt, seed=7)
                assert delay == retry_delay(0.5, count, attempt, seed=7)
                floor = 0.5 * 2**attempt
                assert floor <= delay < 2 * floor
        # Different stage counts draw decorrelated jitter, so a herd of
        # simultaneous failures does not re-fork in lockstep.
        delays = {retry_delay(0.5, c, 0, seed=7) for c in range(1, 9)}
        assert len(delays) == 8

    def test_process_retries_follow_the_jitter_schedule(
        self, tiny_graph, small_cluster, tiny_database
    ):
        from repro.telemetry import CallbackSink, TelemetryBus, using_bus

        def always_raises_on_two(payload):
            if payload[3] == 2:
                raise RuntimeError("injected fault")
            return _stage_count_worker(payload)

        retries = []
        bus = TelemetryBus()
        bus.add_sink(CallbackSink(
            lambda e: retries.append(e)
            if e.name == "driver.worker.retry"
            else None
        ))
        with using_bus(bus):
            search_all_stage_counts(
                tiny_graph,
                small_cluster,
                fresh_model(tiny_graph, small_cluster, tiny_database),
                budget_per_count=BUDGET,
                workers=2,
                max_retries=2,
                retry_backoff=0.01,
                _worker_fn=always_raises_on_two,
            )
        assert [e.attrs["attempt"] for e in retries] == [0, 1]
        for event in retries:
            assert event.attrs["delay"] == retry_delay(
                0.01, 2, event.attrs["attempt"], seed=0
            )

    def test_serial_retries_follow_the_jitter_schedule(
        self, tiny_graph, small_cluster, tiny_database, monkeypatch
    ):
        import repro.core.search as search_module
        from repro.telemetry import CallbackSink, TelemetryBus, using_bus

        def always_broken(graph, cluster, count):
            raise RuntimeError("bad init")

        monkeypatch.setattr(
            search_module, "balanced_config", always_broken
        )
        monkeypatch.setattr(search_module.time, "sleep", lambda s: None)
        retries = []
        bus = TelemetryBus()
        bus.add_sink(CallbackSink(
            lambda e: retries.append(e)
            if e.name == "driver.worker.retry"
            else None
        ))
        with using_bus(bus):
            search_all_stage_counts(
                tiny_graph,
                small_cluster,
                fresh_model(tiny_graph, small_cluster, tiny_database),
                stage_counts=[2],
                budget_per_count=BUDGET,
                max_retries=2,
                retry_backoff=0.25,
            )
        assert [e.attrs["delay"] for e in retries] == [
            retry_delay(0.25, 2, 0, seed=0),
            retry_delay(0.25, 2, 1, seed=0),
        ]


class TestCheckpointQuarantine:
    def test_corrupt_file_is_quarantined_not_fatal(self, tmp_path):
        from repro.telemetry import CallbackSink, TelemetryBus, using_bus

        path = tmp_path / "search.ckpt.json"
        path.write_text('{"format_version": 1, "completed": tru')
        events = []
        bus = TelemetryBus()
        bus.add_sink(CallbackSink(events.append))
        with using_bus(bus):
            assert SearchCheckpoint.load_or_quarantine(path) is None
        assert not path.exists()
        quarantined = tmp_path / "search.ckpt.json.corrupt"
        assert quarantined.exists()
        assert quarantined.read_text().endswith("tru")
        names = [e.name for e in events]
        assert names == ["checkpoint.corrupt"]
        assert events[0].attrs["quarantined_to"] == str(quarantined)

    def test_missing_and_valid_files_pass_through(self, tmp_path):
        path = tmp_path / "none.json"
        assert SearchCheckpoint.load_or_quarantine(path) is None
        ckpt = SearchCheckpoint.new(
            [1, 2], {"max_iterations": 3}, {"num_ops": 1}, path
        )
        ckpt.save()
        loaded = SearchCheckpoint.load_or_quarantine(path)
        assert loaded is not None
        assert path.exists()

    def test_resume_with_corrupt_checkpoint_starts_fresh(
        self, tiny_graph, small_cluster, tiny_database, tmp_path
    ):
        path = tmp_path / "search.ckpt.json"
        path.write_text("not json at all")
        result = search_all_stage_counts(
            tiny_graph,
            small_cluster,
            fresh_model(tiny_graph, small_cluster, tiny_database),
            budget_per_count=BUDGET,
            checkpoint_path=path,
            resume=True,
        )
        assert not result.failures
        assert (tmp_path / "search.ckpt.json.corrupt").exists()
        # The fresh checkpoint written alongside is valid and complete.
        on_disk = json.loads(path.read_text())
        assert sorted(on_disk["completed"]) == ["1", "2", "4"]


class TestDeadline:
    def test_deadline_semantics(self):
        unbounded = Deadline(None)
        assert not unbounded.expired()
        assert unbounded.remaining() is None
        expired = Deadline(0.0)
        assert expired.expired()
        assert expired.remaining() == 0.0
        with pytest.raises(ValueError):
            Deadline(-1.0)
        cancelled = Deadline(None)
        cancelled.cancel()
        assert cancelled.expired()
        assert cancelled.remaining() == 0.0

    def test_anytime_prefix_is_bit_exact(
        self, tiny_graph, small_cluster, tiny_database
    ):
        """A deadline hit after k iterations returns exactly the plan a
        k-iteration search returns — the acceptance criterion."""
        from repro.parallel import balanced_config
        from repro.telemetry import CallbackSink, TelemetryBus, using_bus

        cutoff = 3
        init = balanced_config(tiny_graph, small_cluster, 2)
        reference = AcesoSearch(
            tiny_graph,
            small_cluster,
            fresh_model(tiny_graph, small_cluster, tiny_database),
        ).run(init, SearchBudget(max_iterations=cutoff))

        # A fake clock that jumps past the deadline once `cutoff`
        # iterations have been applied, mid-"wall-clock" of the run.
        clock = [0.0]
        deadline = Deadline(10.0, clock=lambda: clock[0])

        def advance(event):
            if (
                event.name == "search.iteration"
                and event.attrs["index"] >= cutoff
            ):
                clock[0] = 100.0

        bus = TelemetryBus()
        bus.add_sink(CallbackSink(advance))
        with using_bus(bus):
            anytime = AcesoSearch(
                tiny_graph,
                small_cluster,
                fresh_model(tiny_graph, small_cluster, tiny_database),
            ).run(
                init,
                SearchBudget(max_iterations=cutoff * 10),
                deadline=deadline,
            )
        assert anytime.partial
        assert not reference.partial
        assert anytime.trace.num_iterations == cutoff
        assert anytime.best_objective == reference.best_objective
        assert anytime.best_config.signature() == (
            reference.best_config.signature()
        )

    def test_expired_deadline_sheds_every_count(
        self, tiny_graph, small_cluster, tiny_database
    ):
        for workers in (1, 2):
            result = search_all_stage_counts(
                tiny_graph,
                small_cluster,
                fresh_model(tiny_graph, small_cluster, tiny_database),
                budget_per_count=BUDGET,
                workers=workers,
                deadline=Deadline(0.0),
            )
            assert not result.runs
            assert result.partial
            assert {f.kind for f in result.failures} == {"deadline"}
            with pytest.raises(SearchFailedError):
                result.best

    def test_generous_deadline_changes_nothing(
        self, tiny_graph, small_cluster, tiny_database
    ):
        clean = search_all_stage_counts(
            tiny_graph,
            small_cluster,
            fresh_model(tiny_graph, small_cluster, tiny_database),
            budget_per_count=BUDGET,
        )
        bounded = search_all_stage_counts(
            tiny_graph,
            small_cluster,
            fresh_model(tiny_graph, small_cluster, tiny_database),
            budget_per_count=BUDGET,
            deadline=Deadline(3600.0),
        )
        assert not bounded.partial
        assert bounded.best.best_objective == clean.best.best_objective

    def test_partial_runs_are_not_checkpointed(
        self, tiny_graph, small_cluster, tiny_database, tmp_path
    ):
        path = tmp_path / "search.ckpt.json"
        result = search_all_stage_counts(
            tiny_graph,
            small_cluster,
            fresh_model(tiny_graph, small_cluster, tiny_database),
            budget_per_count=BUDGET,
            deadline=Deadline(0.0),
            checkpoint_path=path,
        )
        assert result.partial
        on_disk = json.loads(path.read_text())
        # Deadline-cut results are best-so-far, not the search's
        # answer: a resume must search these counts again.
        assert on_disk["completed"] == {}


class TestMemoryGuard:
    def test_failure_kind_classification(self):
        assert _failure_kind_from_error("MemoryError: big") == "oom"
        assert _failure_kind_from_error("RuntimeError: x") == "error"

    def test_memory_capped_worker_surfaces_oom(
        self, tiny_graph, small_cluster, tiny_database
    ):
        def allocates_on_two(payload):
            if payload[3] == 2:
                hog = bytearray(8 * 1024**3)  # 8 GiB, over any cap
                return len(hog)
            return _stage_count_worker(payload)

        result = search_all_stage_counts(
            tiny_graph,
            small_cluster,
            fresh_model(tiny_graph, small_cluster, tiny_database),
            budget_per_count=BUDGET,
            workers=2,
            max_retries=0,
            worker_memory_mb=2048,
            _worker_fn=allocates_on_two,
        )
        assert [run.num_stages for run in result.runs] == [1, 4]
        failure = result.failures[0]
        assert failure.num_stages == 2
        assert failure.kind == "oom"
        assert "MemoryError" in failure.error

    def test_rejects_nonpositive_cap(
        self, tiny_graph, small_cluster, tiny_perf_model
    ):
        with pytest.raises(ValueError, match="worker_memory_mb"):
            search_all_stage_counts(
                tiny_graph,
                small_cluster,
                tiny_perf_model,
                budget_per_count=BUDGET,
                worker_memory_mb=0,
            )


class TestElasticReplan:
    def test_warm_start_beats_cold_restart(
        self, tiny_graph, small_cluster, tiny_database
    ):
        initial = search_all_stage_counts(
            tiny_graph,
            small_cluster,
            fresh_model(tiny_graph, small_cluster, tiny_database),
            budget_per_count=BUDGET,
        )
        shrunk = shrink_cluster(small_cluster, [3])
        database = SimulatedProfiler(shrunk, seed=0).profile(tiny_graph)
        comparison = elastic_replan(
            tiny_graph,
            shrunk,
            initial.top_configs(5),
            database=database,
            budget_per_count=BUDGET,
        )
        warm, cold = comparison.warm, comparison.cold
        assert warm.feasible and cold.feasible
        assert warm.num_estimates < cold.num_estimates
        assert warm.estimates_to_feasible <= cold.estimates_to_feasible
        assert comparison.estimate_savings > 0
        # Warm start must not end worse than the cold restart's plan.
        assert warm.best_objective <= cold.best_objective * 1.05

    def test_replan_falls_back_without_adaptable_survivors(
        self, tiny_graph, small_cluster, tiny_database
    ):
        shrunk = shrink_cluster(small_cluster, [3])
        database = SimulatedProfiler(shrunk, seed=0).profile(tiny_graph)
        comparison = elastic_replan(
            tiny_graph,
            shrunk,
            [],  # nobody survived
            database=database,
            budget_per_count=BUDGET,
        )
        assert comparison.warm.feasible
