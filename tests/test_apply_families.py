"""Primitive application across heterogeneous model families.

GPT is homogeneous; T5 and Wide-ResNet stress op movement and tp
choices with uneven per-op costs and conv partition dimensions.  Every
primitive must produce valid candidates (or cleanly none) on all of
them.
"""

import pytest

from repro.core import (
    ApplyContext,
    AcesoSearch,
    SearchBudget,
    apply_primitive,
    identify_bottleneck,
)
from repro.cluster import paper_cluster
from repro.ir.models import build_model
from repro.parallel import balanced_config, validate_config
from repro.perfmodel import PerfModel
from repro.profiling import SimulatedProfiler

PRIMITIVES = [
    "inc-op#", "dec-op#", "inc-mbs", "dec-mbs",
    "inc-dp", "dec-dp", "inc-tp", "dec-tp", "inc-rc", "dec-rc",
]


@pytest.fixture(scope="module", params=["t5-770m", "wresnet-500m"])
def family_setup(request):
    graph = build_model(request.param, batch_size=64)
    cluster = paper_cluster(4)
    database = SimulatedProfiler(cluster, seed=0).profile(graph)
    perf_model = PerfModel(graph, cluster, database)
    return graph, cluster, perf_model


def _ctx(graph, cluster, perf_model, stages):
    config = balanced_config(graph, cluster, stages)
    report = perf_model.estimate(config)
    return ApplyContext(
        graph=graph,
        cluster=cluster,
        perf_model=perf_model,
        config=config,
        report=report,
        bottleneck=identify_bottleneck(report),
    )


class TestPrimitivesAcrossFamilies:
    @pytest.mark.parametrize("name", PRIMITIVES)
    def test_candidates_valid(self, family_setup, name):
        graph, cluster, perf_model = family_setup
        ctx = _ctx(graph, cluster, perf_model, 4)
        for candidate in apply_primitive(name, ctx):
            validate_config(candidate, graph, cluster)

    def test_dec_op_balances_heterogeneous_costs(self, family_setup):
        """Moving ops off the bottleneck reduces its busy time."""
        graph, cluster, perf_model = family_setup
        ctx = _ctx(graph, cluster, perf_model, 4)
        candidates = apply_primitive("dec-op#", ctx)
        if not candidates:
            pytest.skip("bottleneck stage has a single op")
        before = ctx.report.stage_times()[ctx.bottleneck.stage]
        eased = min(
            perf_model.estimate(c).stage_times()[ctx.bottleneck.stage]
            for c in candidates
        )
        assert eased < before

    def test_search_runs_end_to_end(self, family_setup):
        graph, cluster, perf_model = family_setup
        init = balanced_config(graph, cluster, 4)
        search = AcesoSearch(graph, cluster, perf_model)
        result = search.run(init, SearchBudget(max_iterations=5))
        assert result.best_objective <= perf_model.objective(init)
        validate_config(result.best_config, graph, cluster)


class TestConvPartitionDims:
    def test_wresnet_ops_expose_two_dims(self):
        graph = build_model("wresnet-500m", batch_size=64)
        convs = [op for op in graph.ops if op.kind == "conv2d"]
        assert convs
        for op in convs:
            names = {o.name for o in op.partition_options}
            assert names == {"in_channel", "out_channel"}
            assert op.option(0).name == "out_channel"  # Megatron default

    def test_t5_cross_attention_costs_differ(self):
        graph = build_model("t5-770m")
        self_core = graph.ops[graph.op_index("dec0.attn_core")]
        cross_core = graph.ops[graph.op_index("dec0.xattn_core")]
        # Cross attention attends over the 2048-token encoder output.
        assert cross_core.flops > self_core.flops
