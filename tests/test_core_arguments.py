"""Tests for greedy argument selection (§4.1)."""

import numpy as np
import pytest

from repro.core import (
    greedy_recompute,
    greedy_unrecompute,
    op_move_counts,
    stage_activation_bytes,
    tune_recompute,
)
from repro.parallel import balanced_config, is_valid
from repro.perfmodel import PerfModel
from repro.profiling import SimulatedProfiler

from conftest import (
    make_activation_heavy_gpt,
    make_tight_cluster,
    make_tiny_gpt,
)


@pytest.fixture(scope="module")
def tight_setup():
    """A model that does NOT fit its cluster without recomputation."""
    graph = make_activation_heavy_gpt()
    cluster = make_tight_cluster(num_gpus=4, memory_mb=64)
    database = SimulatedProfiler(cluster, seed=0).profile(graph)
    perf_model = PerfModel(graph, cluster, database)
    config = balanced_config(graph, cluster, 2, microbatch_size=16)
    report = perf_model.estimate(config)
    assert report.is_oom, "fixture must start out-of-memory"
    return graph, cluster, perf_model, config


class TestStageActivationBytes:
    def test_shape_and_positive(self, tiny_graph, small_cluster,
                                tiny_perf_model, tiny_config):
        act = stage_activation_bytes(tiny_graph, tiny_config, 0)
        assert act.shape == (tiny_config.stages[0].num_ops,)
        assert np.all(act >= 0)
        assert act.sum() > 0


class TestGreedyRecompute:
    def test_fixes_oom(self, tight_setup):
        graph, cluster, perf_model, config = tight_setup
        report = perf_model.estimate(config)
        oom_stage = report.oom_stages[0]
        fixed = greedy_recompute(perf_model, config, oom_stage)
        assert fixed is not None
        new_report = perf_model.estimate(fixed)
        assert (
            new_report.stages[oom_stage].peak_memory
            <= new_report.memory_limit
        )

    def test_recomputes_subset_not_everything(self, tight_setup):
        graph, cluster, perf_model, config = tight_setup
        report = perf_model.estimate(config)
        oom_stage = report.oom_stages[0]
        fixed = greedy_recompute(perf_model, config, oom_stage)
        stage = fixed.stages[oom_stage]
        assert 0 < stage.recompute.sum() <= stage.num_ops

    def test_noop_when_already_fits(self, tiny_perf_model, tiny_config):
        assert greedy_recompute(tiny_perf_model, tiny_config, 0) is None

    def test_returns_none_when_hopeless(self):
        graph = make_tiny_gpt(num_layers=6, batch_size=64)
        cluster = make_tight_cluster(num_gpus=2, memory_mb=1)
        db = SimulatedProfiler(cluster, seed=0).profile(graph)
        pm = PerfModel(graph, cluster, db)
        config = balanced_config(graph, cluster, 2, microbatch_size=32)
        assert greedy_recompute(pm, config, 0) is None


class TestGreedyUnrecompute:
    def test_releases_when_slack(self, tiny_perf_model, tiny_config):
        config = tiny_config.clone()
        config.stages[0].recompute[:] = True
        relaxed = greedy_unrecompute(tiny_perf_model, config, 0)
        assert relaxed is not None
        assert relaxed.stages[0].recompute.sum() < config.stages[0].num_ops
        report = tiny_perf_model.estimate(relaxed)
        assert report.stages[0].peak_memory <= report.memory_limit

    def test_noop_without_recompute(self, tiny_perf_model, tiny_config):
        assert greedy_unrecompute(tiny_perf_model, tiny_config, 0) is None

    def test_improves_objective(self, tiny_perf_model, tiny_config):
        config = tiny_config.clone()
        config.stages[0].recompute[:] = True
        relaxed = greedy_unrecompute(tiny_perf_model, config, 0)
        assert (
            tiny_perf_model.objective(relaxed)
            < tiny_perf_model.objective(config)
        )


class TestTuneRecompute:
    def test_fixes_all_oom_stages(self, tight_setup):
        graph, cluster, perf_model, config = tight_setup
        tuned = tune_recompute(
            perf_model, config, list(range(config.num_stages))
        )
        report = perf_model.estimate(tuned)
        assert not report.is_oom

    def test_out_of_range_stage_ignored(self, tiny_perf_model, tiny_config):
        tuned = tune_recompute(tiny_perf_model, tiny_config, [99, -1])
        assert tuned.signature() == tiny_config.signature()


class TestOpMoveCounts:
    def test_ladder_bounded(self, tiny_graph, tiny_config):
        counts = op_move_counts(
            tiny_graph, tiny_config, 0, 1, from_front=False
        )
        assert counts
        span = tiny_config.stages[0].num_ops
        assert all(1 <= k < span for k in counts)
        assert counts == sorted(counts)

    def test_single_op_stage_empty(self, tiny_graph, small_cluster):
        from repro.parallel import ParallelConfig, StageConfig

        n = tiny_graph.num_ops
        config = ParallelConfig(
            stages=[
                StageConfig.uniform(0, 1, 2),
                StageConfig.uniform(1, n, 2),
            ],
            microbatch_size=2,
        )
        assert op_move_counts(tiny_graph, config, 0, 1, from_front=False) == []
