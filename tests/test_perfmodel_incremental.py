"""Incremental stage-level estimation: equivalence + cache semantics.

The performance model memoizes per-stage costs and assembles whole
configurations from them.  These tests pin the contract that makes the
optimization safe: the cached/incremental path must be *bit-identical*
to costing every stage from scratch, across random primitive walks,
and the search must reach the same outcome with stage caching on, off,
or fanned out over worker processes.
"""

import dataclasses

import numpy as np
import pytest

from repro.cluster import paper_cluster
from repro.core import (
    AcesoSearch,
    AcesoSearchOptions,
    ApplyContext,
    SearchBudget,
    apply_primitive,
    rank_bottlenecks,
    search_all_stage_counts,
)
from repro.ir.models import build_model
from repro.ir.models.synthetic import build_synthetic
from repro.parallel import balanced_config, changed_stages
from repro.perfmodel import PerfModel
from repro.profiling import SimulatedProfiler

PRIMITIVES = [
    "inc-op#", "dec-op#", "inc-mbs", "dec-mbs",
    "inc-dp", "dec-dp", "inc-tp", "dec-tp", "inc-rc", "dec-rc",
]


def assert_reports_identical(a, b):
    """Every PerfReport field equal to the last ulp (no approx)."""
    assert a.num_microbatches == b.num_microbatches
    assert a.iteration_time == b.iteration_time
    assert a.memory_limit == b.memory_limit
    assert len(a.stages) == len(b.stages)
    for sa, sb in zip(a.stages, b.stages):
        for f in dataclasses.fields(sa):
            va, vb = getattr(sa, f.name), getattr(sb, f.name)
            assert va == vb, (
                f"stage field {f.name}: {va!r} != {vb!r}"
            )


def random_walk(model, graph, cluster, config, rng, steps=12):
    """Apply random primitives, yielding each visited configuration."""
    for _ in range(steps):
        report = model.estimate(config)
        ctx = ApplyContext(
            graph=graph,
            cluster=cluster,
            perf_model=model,
            config=config,
            report=report,
            bottleneck=rank_bottlenecks(report)[0],
        )
        name = PRIMITIVES[int(rng.integers(len(PRIMITIVES)))]
        candidates = apply_primitive(name, ctx)
        if not candidates:
            continue
        config = candidates[int(rng.integers(len(candidates)))]
        yield config


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_fuzz_matches_full_reestimation(self, seed):
        """Random primitive walks on synthetic graphs: the memoized
        estimate is bit-identical to costing every stage fresh."""
        graph = build_synthetic(24, seed=seed)
        cluster = paper_cluster(4)
        database = SimulatedProfiler(cluster, seed=0).profile(graph)
        model = PerfModel(graph, cluster, database)
        rng = np.random.default_rng(seed)
        config = balanced_config(graph, cluster, 4)
        checked = 0
        for visited in random_walk(model, graph, cluster, config, rng):
            warm = model.estimate(visited)
            fresh = model.estimate_fresh(visited)
            assert_reports_identical(warm, fresh)
            checked += 1
        assert checked > 0
        # The walk produced genuine stage-cache reuse, not all misses.
        info = model.cache_info()
        assert info["num_stage_hits"] > 0

    def test_dirty_stage_hints_match_identity(self):
        """changed_stages only reports stages whose object changed, and
        every shared stage is genuinely untouched."""
        graph = build_synthetic(24, seed=7)
        cluster = paper_cluster(4)
        database = SimulatedProfiler(cluster, seed=0).profile(graph)
        model = PerfModel(graph, cluster, database)
        rng = np.random.default_rng(7)
        parent = balanced_config(graph, cluster, 4)
        for child in random_walk(model, graph, cluster, parent, rng):
            dirty = set(changed_stages(child, parent))
            if child.num_stages == parent.num_stages:
                for i, (a, b) in enumerate(
                    zip(child.stages, parent.stages)
                ):
                    if i not in dirty:
                        assert a is b
                        np.testing.assert_array_equal(a.tp, b.tp)
                        np.testing.assert_array_equal(
                            a.recompute, b.recompute
                        )
            parent = child

    def test_num_estimates_semantics_preserved(self):
        """Exp#4's explored-configs metric: one increment per unique
        configuration, never per stage-cache event."""
        graph = build_synthetic(16, seed=1)
        cluster = paper_cluster(4)
        database = SimulatedProfiler(cluster, seed=0).profile(graph)
        model = PerfModel(graph, cluster, database)
        config = balanced_config(graph, cluster, 2)
        for _ in range(5):
            model.estimate(config)
        assert model.num_estimates == 1
        # A different stage count shares no config-cache entry but may
        # share stage work; the metric still counts the configuration.
        model.estimate(balanced_config(graph, cluster, 4))
        assert model.num_estimates == 2
        # estimate_fresh never touches the metric.
        model.estimate_fresh(config)
        assert model.num_estimates == 2


class TestLRUEviction:
    def test_evicts_oldest_not_everything(self, tiny_graph, small_cluster,
                                          tiny_database):
        model = PerfModel(
            tiny_graph, small_cluster, tiny_database, cache_size=2
        )
        c1 = balanced_config(tiny_graph, small_cluster, 1)
        c2 = balanced_config(tiny_graph, small_cluster, 2)
        c3 = balanced_config(tiny_graph, small_cluster, 4)
        model.estimate(c1)
        model.estimate(c2)
        model.estimate(c1)  # refresh c1 -> c2 is now the oldest
        model.estimate(c3)  # evicts only c2
        before = model.num_estimates
        model.estimate(c1)
        model.estimate(c3)
        assert model.num_estimates == before  # both still cached
        model.estimate(c2)
        assert model.num_estimates == before + 1  # c2 was the evictee

    def test_stage_cache_bounded(self):
        graph = build_synthetic(16, seed=2)
        cluster = paper_cluster(4)
        database = SimulatedProfiler(cluster, seed=0).profile(graph)
        model = PerfModel(
            graph, cluster, database, stage_cache_size=3
        )
        for stages in (1, 2, 4):
            for mbs in (1, 2, 4):
                model.estimate(
                    balanced_config(graph, cluster, stages,
                                    microbatch_size=mbs)
                )
        assert model.cache_info()["stage_cache_len"] <= 3
        # Results stay correct after evictions.
        config = balanced_config(graph, cluster, 2)
        assert_reports_identical(
            model.estimate(config), model.estimate_fresh(config)
        )

    def test_stage_cache_disabled_still_exact(self):
        graph = build_synthetic(16, seed=3)
        cluster = paper_cluster(4)
        database = SimulatedProfiler(cluster, seed=0).profile(graph)
        off = PerfModel(graph, cluster, database, stage_cache_size=0)
        config = balanced_config(graph, cluster, 4)
        report = off.estimate(config)
        assert off.cache_info()["num_stage_hits"] == 0
        assert_reports_identical(report, off.estimate_fresh(config))


class TestSearchOutcomeEquivalence:
    @pytest.mark.parametrize(
        "model_name", ["gpt3-350m", "t5-770m", "wresnet-500m"]
    )
    def test_stage_cache_does_not_change_search(self, model_name):
        """Seeded searches find the same best config and objective with
        stage-level memoization on and off."""
        graph = build_model(model_name, batch_size=64)
        cluster = paper_cluster(4)
        database = SimulatedProfiler(cluster, seed=0).profile(graph)
        outcomes = []
        for stage_cache_size in (200_000, 0):
            model = PerfModel(
                graph, cluster, database,
                stage_cache_size=stage_cache_size,
            )
            search = AcesoSearch(graph, cluster, model)
            result = search.run(
                balanced_config(graph, cluster, 4),
                SearchBudget(max_iterations=8),
            )
            outcomes.append(result)
        cached, uncached = outcomes
        assert cached.best_objective == uncached.best_objective
        assert (
            cached.best_config.signature()
            == uncached.best_config.signature()
        )
        assert cached.num_estimates == uncached.num_estimates

    def test_workers_match_serial(self, tiny_graph, small_cluster,
                                  tiny_database):
        """The process-pool driver returns the identical best config."""
        options = AcesoSearchOptions(seed=0)
        runs = {}
        for workers in (1, 2):
            model = PerfModel(tiny_graph, small_cluster, tiny_database)
            runs[workers] = search_all_stage_counts(
                tiny_graph, small_cluster, model,
                stage_counts=[1, 2, 4],
                options=options,
                budget_per_count={"max_iterations": 4},
                workers=workers,
            )
        serial, parallel = runs[1], runs[2]
        assert parallel.workers == 2
        assert serial.workers == 1
        assert parallel.wall_seconds > 0
        assert [r.num_stages for r in parallel.runs] == [1, 2, 4]
        assert (
            serial.best.best_objective == parallel.best.best_objective
        )
        assert (
            serial.best.best_config.signature()
            == parallel.best.best_config.signature()
        )
        for a, b in zip(serial.runs, parallel.runs):
            assert a.result.best_objective == b.result.best_objective
