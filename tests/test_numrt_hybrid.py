"""Tests for hybrid-mechanism training equivalence.

Real Aceso configurations combine mechanisms hierarchically (Figure 2);
these tests validate the §4 correctness claim for the *combinations*,
not just the individual mechanisms.
"""

import pytest

from repro.numrt import (
    MLP,
    dp_pp_loss_and_grads,
    dp_pp_rc_loss_and_grads,
    dp_rc_loss_and_grads,
    make_dataset,
    pp_rc_loss_and_grads,
    runs_equivalent,
    serial_fn,
    train,
)


@pytest.fixture(scope="module")
def setup():
    model = MLP([16, 32, 16, 32, 8], seed=1)
    x, target = make_dataset(24, 16, 8, seed=2)
    reference = train(model, x, target, serial_fn)
    return model, x, target, reference


class TestHybridEquivalence:
    @pytest.mark.parametrize("dp,stages,microbatches", [
        (2, 2, 2), (2, 2, 3), (4, 2, 2), (2, 4, 6),
    ])
    def test_dp_over_pipeline(self, setup, dp, stages, microbatches):
        model, x, target, reference = setup
        run = train(
            model, x, target,
            lambda m, a, b: dp_pp_loss_and_grads(
                m, a, b, dp, stages, microbatches
            ),
        )
        assert runs_equivalent(reference, run)

    @pytest.mark.parametrize("dp,segment", [(2, 1), (2, 2), (4, 3)])
    def test_dp_over_recompute(self, setup, dp, segment):
        model, x, target, reference = setup
        run = train(
            model, x, target,
            lambda m, a, b: dp_rc_loss_and_grads(m, a, b, dp, segment),
        )
        assert runs_equivalent(reference, run)

    @pytest.mark.parametrize("stages,microbatches,segment", [
        (2, 2, 1), (2, 3, 2), (4, 6, 1),
    ])
    def test_pipeline_with_recompute(self, setup, stages, microbatches,
                                     segment):
        model, x, target, reference = setup
        run = train(
            model, x, target,
            lambda m, a, b: pp_rc_loss_and_grads(
                m, a, b, stages, microbatches, segment
            ),
        )
        assert runs_equivalent(reference, run)

    def test_full_hierarchy(self, setup):
        """dp x pp x recompute — the shape of a real deployed plan."""
        model, x, target, reference = setup
        run = train(
            model, x, target,
            lambda m, a, b: dp_pp_rc_loss_and_grads(m, a, b, 2, 2, 3, 2),
        )
        assert runs_equivalent(reference, run)

    def test_loss_matches_serial(self, setup):
        model, x, target, _ = setup
        serial_loss, _ = model.loss_and_grads(x, target)
        hybrid_loss, _ = dp_pp_rc_loss_and_grads(
            model, x, target, 2, 2, 2, 1
        )
        assert hybrid_loss == pytest.approx(serial_loss)

    def test_bad_microbatching_rejected(self, setup):
        model, x, target, _ = setup
        with pytest.raises(ValueError):
            pp_rc_loss_and_grads(model, x, target, 2, 7, 1)
