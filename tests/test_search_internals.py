"""Behavioural tests of search internals under memory pressure."""

import pytest

from repro.core import (
    AcesoSearch,
    AcesoSearchOptions,
    ApplyContext,
    SearchBudget,
    candidate_groups,
    identify_bottleneck,
)
from repro.parallel import balanced_config
from repro.perfmodel import PerfModel
from repro.profiling import SimulatedProfiler

from conftest import make_activation_heavy_gpt, make_tight_cluster


@pytest.fixture(scope="module")
def pressured():
    graph = make_activation_heavy_gpt()
    cluster = make_tight_cluster(num_gpus=4, memory_mb=64)
    database = SimulatedProfiler(cluster, seed=0).profile(graph)
    perf_model = PerfModel(graph, cluster, database)
    config = balanced_config(graph, cluster, 2, microbatch_size=16)
    return graph, cluster, perf_model, config


class TestOOMPriorities:
    def test_memory_ranked_first_under_oom(self, pressured):
        graph, cluster, perf_model, config = pressured
        report = perf_model.estimate(config)
        bottleneck = identify_bottleneck(report)
        assert bottleneck.is_oom
        assert bottleneck.primary_resource == "memory"

    def test_first_group_is_memory_reliever(self, pressured):
        graph, cluster, perf_model, config = pressured
        report = perf_model.estimate(config)
        ctx = ApplyContext(
            graph=graph,
            cluster=cluster,
            perf_model=perf_model,
            config=config,
            report=report,
            bottleneck=identify_bottleneck(report),
        )
        groups = candidate_groups(ctx)
        assert groups
        assert groups[0].resource == "memory"
        from repro.core import get_primitive

        assert get_primitive(groups[0].primitive).decreases("memory")

    def test_some_candidate_reduces_bottleneck_memory(self, pressured):
        graph, cluster, perf_model, config = pressured
        report = perf_model.estimate(config)
        ctx = ApplyContext(
            graph=graph,
            cluster=cluster,
            perf_model=perf_model,
            config=config,
            report=report,
            bottleneck=identify_bottleneck(report),
        )
        stage = ctx.bottleneck.stage
        before = report.peak_memories[stage]
        groups = candidate_groups(ctx)
        best_memory = min(
            perf_model.estimate(c).peak_memories[stage]
            for g in groups
            for c in g.candidates
        )
        assert best_memory < before


class TestSearchRobustness:
    def test_attach_recompute_off_still_recovers(self, pressured):
        """Without rc-attach the standalone inc-rc primitive must still
        rescue an OOM start (just potentially slower)."""
        graph, cluster, perf_model, config = pressured
        options = AcesoSearchOptions(attach_recompute=False)
        search = AcesoSearch(graph, cluster, perf_model, options=options)
        result = search.run(config, SearchBudget(max_iterations=15))
        assert result.is_feasible

    def test_beam_width_one_still_works(self, pressured):
        graph, cluster, perf_model, config = pressured
        options = AcesoSearchOptions(beam_width=1)
        search = AcesoSearch(graph, cluster, perf_model, options=options)
        result = search.run(config, SearchBudget(max_iterations=15))
        assert result.is_feasible

    def test_converged_flag_on_exhausted_space(self, tiny_graph,
                                               small_cluster,
                                               tiny_perf_model):
        """A very long budget on a small space ends with convergence
        (unexplored pool drained), not budget exhaustion."""
        init = balanced_config(tiny_graph, small_cluster, 1)
        options = AcesoSearchOptions(max_hops=2,
                                     max_nodes_per_iteration=20)
        search = AcesoSearch(tiny_graph, small_cluster, tiny_perf_model,
                             options=options)
        result = search.run(init, SearchBudget(max_iterations=500))
        assert result.converged or result.trace.num_iterations == 500
