"""Telemetry: bus semantics, sinks, run logs, Chrome traces, CLI."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AcesoSearch, SearchBudget, search_all_stage_counts
from repro.core.trace import SearchTrace
from repro.faults import DeviceFailure, FaultPlan, StragglerSlowdown
from repro.parallel import balanced_config
from repro.perfmodel import PerfModel
from repro.runtime import Executor
from repro.runtime.simulator import simulate_pipeline
from repro.telemetry import (
    DEBUG,
    WARNING,
    CallbackSink,
    ConsoleSink,
    CounterGroup,
    Event,
    JsonlSink,
    RingBufferSink,
    TelemetryBus,
    chrome_trace_from_events,
    chrome_trace_from_tasks,
    get_bus,
    read_run_log,
    render_summary,
    summarize_events,
    using_bus,
    validate_chrome_trace,
    validate_run_log,
    write_chrome_trace,
)

BUDGET = {"max_iterations": 6}


def fresh_model(graph, cluster, database):
    return PerfModel(graph, cluster, database)


class TestBus:
    def test_inactive_emit_is_noop(self):
        bus = TelemetryBus()
        assert not bus.active
        assert bus.emit("x", value=1) is None

    def test_sink_receives_events(self):
        bus = TelemetryBus()
        ring = bus.add_sink(RingBufferSink())
        event = bus.emit("unit.test", source="tests", value=3)
        assert bus.active
        assert ring.events == [event]
        assert event.attrs == {"value": 3}
        assert event.pid == bus.pid

    def test_sink_context_detaches(self):
        bus = TelemetryBus()
        with bus.sink(RingBufferSink()) as ring:
            bus.emit("inside")
        bus.emit("outside")
        assert [e.name for e in ring.events] == ["inside"]
        assert not bus.active

    def test_span_measures_duration(self):
        bus = TelemetryBus()
        ring = bus.add_sink(RingBufferSink())
        with bus.span("unit.span", source="tests") as span:
            span.set(detail="yes")
        begin, end = ring.events
        assert begin.kind == "span_begin"
        assert end.kind == "span_end"
        assert end.attrs["detail"] == "yes"
        assert end.attrs["duration"] >= 0
        assert end.ts >= begin.ts

    def test_inactive_span_yields_null_handle(self):
        bus = TelemetryBus()
        with bus.span("unit.span") as span:
            span.set(ignored=True)  # must not raise

    def test_private_attrs_dropped_from_json(self):
        event = Event(name="x", attrs={"keep": 1, "_drop": object()})
        data = event.to_json()
        assert data["attrs"] == {"keep": 1}
        assert Event.from_json(data).attrs == {"keep": 1}

    def test_with_attrs_merges(self):
        event = Event(name="x", attrs={"a": 1})
        stamped = event.with_attrs(b=2)
        assert stamped.attrs == {"a": 1, "b": 2}
        assert event.attrs == {"a": 1}

    def test_callback_sink_filters_names(self):
        bus = TelemetryBus()
        seen = []
        bus.add_sink(CallbackSink(seen.append, names=("wanted",)))
        bus.emit("wanted")
        bus.emit("unwanted")
        assert [e.name for e in seen] == ["wanted"]

    def test_using_bus_restores_previous(self):
        override = TelemetryBus()
        before = get_bus()
        with using_bus(override):
            assert get_bus() is override
        assert get_bus() is before

    def test_counter_group_snapshot_and_emit(self):
        bus = TelemetryBus()
        ring = bus.add_sink(RingBufferSink())
        group = CounterGroup("tests", ("a", "b"))
        group.inc("a", 3)
        group["b"].inc()
        assert group.snapshot() == {"a": 3, "b": 1}
        group.emit_to(bus)
        (event,) = ring.events
        assert event.kind == "counter"
        assert event.attrs == {"a": 3, "b": 1}


class TestRunLog:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = TelemetryBus()
        bus.add_sink(JsonlSink(path))
        bus.emit("alpha", source="tests", level=DEBUG, n=1)
        bus.emit("beta", source="tests", level=WARNING,
                 nested={"k": [1, 2]}, _private=object())
        bus.close()
        events = read_run_log(path)
        assert [e.name for e in events] == ["alpha", "beta"]
        assert events[1].attrs == {"nested": {"k": [1, 2]}}
        assert events[1].level == WARNING
        # validation accepts what the sink writes
        validated = validate_run_log(path)
        assert [e.to_json() for e in validated] == [
            e.to_json() for e in events
        ]

    @pytest.mark.parametrize(
        "line, message",
        [
            ("not json", "invalid JSON"),
            ("[1, 2]", "must be an object"),
            ('{"name": "x"}', "missing keys"),
            (
                '{"name": "", "kind": "event", "ts": 0, "pid": 1, '
                '"source": "", "level": 20, "attrs": {}}',
                "name must be a string",
            ),
            (
                '{"name": "x", "kind": "event", "ts": -1, "pid": 1, '
                '"source": "", "level": 20, "attrs": {}}',
                "non-negative",
            ),
            (
                '{"name": "x", "kind": "event", "ts": 0, "pid": 1, '
                '"source": "", "level": 20, "attrs": []}',
                "attrs must be an object",
            ),
        ],
    )
    def test_validation_rejects_bad_lines(self, tmp_path, line, message):
        path = tmp_path / "bad.jsonl"
        path.write_text(line + "\n")
        with pytest.raises(ValueError, match=message):
            validate_run_log(path)

    def test_validation_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = json.dumps(Event(name="ok").to_json())
        path.write_text(good + "\n" + "broken\n")
        with pytest.raises(ValueError, match="line 2"):
            validate_run_log(path)


class TestChromeTrace:
    def _simulated_tasks(self):
        sim = simulate_pipeline(
            [0.2, 0.3], [0.4, 0.5], 4, record_tasks=True
        )
        assert sim.tasks
        return sim

    def test_trace_from_tasks_is_valid(self, tmp_path):
        sim = self._simulated_tasks()
        trace = chrome_trace_from_tasks(sim.tasks)
        validate_chrome_trace(trace)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == len(sim.tasks)
        for span in spans:
            assert {"ph", "ts", "pid", "tid", "dur"} <= span.keys()
            assert span["ts"] >= 0 and span["dur"] >= 0
        # one metadata track name per stage plus the process name
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in meta} == {
            "process_name", "thread_name"
        }
        path = tmp_path / "trace.json"
        write_chrome_trace(trace, path)
        parsed = json.loads(path.read_text())
        assert parsed == trace

    def test_timestamps_monotone_per_track(self):
        trace = chrome_trace_from_tasks(self._simulated_tasks().tasks)
        last = {}
        for event in trace["traceEvents"]:
            if event["ph"] != "X":
                continue
            track = (event["pid"], event["tid"])
            assert event["ts"] >= last.get(track, 0.0)
            last[track] = event["ts"]

    def test_trace_from_events_groups_by_pid(self):
        def task_event(pid, stage, start):
            return Event(
                name="runtime.task",
                pid=pid,
                attrs={
                    "stage": stage,
                    "microbatch": 0,
                    "direction": "fwd",
                    "start": start,
                    "end": start + 0.1,
                },
            )

        events = [
            task_event(100, 0, 0.0),
            task_event(200, 0, 0.0),
            Event(name="search.begin"),  # ignored
        ]
        trace = chrome_trace_from_events(events)
        validate_chrome_trace(trace)
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert pids == {100, 200}

    def test_validation_rejects_malformed(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError, match="missing 'tid'"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "ts": 0, "pid": 1}]}
            )
        with pytest.raises(ValueError, match="non-negative dur"):
            validate_chrome_trace(
                {"traceEvents": [
                    {"ph": "X", "ts": 0, "pid": 1, "tid": 0, "dur": -1}
                ]}
            )
        with pytest.raises(ValueError, match="regress"):
            validate_chrome_trace(
                {"traceEvents": [
                    {"ph": "X", "ts": 5, "pid": 1, "tid": 0, "dur": 1},
                    {"ph": "X", "ts": 1, "pid": 1, "tid": 0, "dur": 1},
                ]}
            )
        with pytest.raises(ValueError, match="strict JSON"):
            validate_chrome_trace(
                {"traceEvents": [
                    {"ph": "X", "ts": float("nan"), "pid": 1, "tid": 0,
                     "dur": 0}
                ]}
            )


record_strategy = st.fixed_dictionaries({
    "elapsed": st.floats(0, 1e3, allow_nan=False),
    "bottlenecks_tried": st.integers(1, 5),
    "hops_used": st.integers(0, 4),
    "improved": st.booleans(),
    "objective": st.floats(0, 1e6, allow_nan=False),
    "best_objective": st.floats(0, 1e6, allow_nan=False),
})


class TestSearchTraceFromEvents:
    @settings(max_examples=50, deadline=None)
    @given(
        start=st.floats(0, 1e6, allow_nan=False),
        records=st.lists(record_strategy, max_size=12),
    )
    def test_matches_legacy_recording(self, start, records):
        legacy = SearchTrace()
        legacy.convergence.append((0.0, start))
        events = [
            Event(name="search.begin", attrs={"best_objective": start})
        ]
        for i, record in enumerate(records, start=1):
            legacy.record_iteration(index=i, **record)
            events.append(Event(
                name="search.iteration", attrs={"index": i, **record}
            ))
        events.append(Event(name="search.end"))  # ignored
        rebuilt = SearchTrace.from_events(events)
        assert rebuilt.records == legacy.records
        assert rebuilt.convergence == legacy.convergence

    def test_live_search_trace_equals_event_replay(
        self, tiny_graph, small_cluster, tiny_database
    ):
        perf_model = fresh_model(tiny_graph, small_cluster, tiny_database)
        bus = TelemetryBus()
        ring = bus.add_sink(RingBufferSink())
        with using_bus(bus):
            search = AcesoSearch(tiny_graph, small_cluster, perf_model)
            result = search.run(
                balanced_config(tiny_graph, small_cluster, 2),
                SearchBudget(max_iterations=5),
            )
        assert result.trace.num_iterations > 0
        search_events = [
            e for e in ring.events if e.source == "search"
        ]
        rebuilt = SearchTrace.from_events(search_events)
        # bit-exact: the trace IS the replayed event stream
        assert rebuilt.records == result.trace.records
        assert rebuilt.convergence == result.trace.convergence

    def test_search_emits_without_sinks(
        self, tiny_graph, small_cluster, tiny_database
    ):
        perf_model = fresh_model(tiny_graph, small_cluster, tiny_database)
        with using_bus(TelemetryBus()):
            search = AcesoSearch(tiny_graph, small_cluster, perf_model)
            result = search.run(
                balanced_config(tiny_graph, small_cluster, 2),
                SearchBudget(max_iterations=4),
            )
        # the trace comes from the local event list even when the
        # process bus is inactive
        assert result.trace.num_iterations > 0
        assert result.trace.convergence


class TestPerfModelTelemetry:
    def test_counters_track_estimates(
        self, tiny_graph, small_cluster, tiny_database
    ):
        perf_model = fresh_model(tiny_graph, small_cluster, tiny_database)
        config = balanced_config(tiny_graph, small_cluster, 2)
        assert perf_model.num_estimates == 0
        perf_model.estimate(config)
        assert perf_model.num_estimates == 1
        perf_model.estimate(config)  # cached
        assert perf_model.num_estimates == 1
        assert perf_model.counters.snapshot()["config_hits"] == 1

    def test_estimate_events_emitted_when_active(
        self, tiny_graph, small_cluster, tiny_database
    ):
        perf_model = fresh_model(tiny_graph, small_cluster, tiny_database)
        config = balanced_config(tiny_graph, small_cluster, 2)
        bus = TelemetryBus()
        ring = bus.add_sink(RingBufferSink())
        with using_bus(bus):
            perf_model.estimate(config)
            perf_model.estimate(config)
        names = [e.name for e in ring.events]
        assert names.count("perfmodel.estimate") == 1  # miss only
        assert "perfmodel.first_feasible" in names


class TestDriverTelemetry:
    def test_serial_driver_emits_lifecycle(
        self, tiny_graph, small_cluster, tiny_database
    ):
        bus = TelemetryBus()
        ring = bus.add_sink(RingBufferSink())
        with using_bus(bus):
            search_all_stage_counts(
                tiny_graph,
                small_cluster,
                fresh_model(tiny_graph, small_cluster, tiny_database),
                budget_per_count=BUDGET,
                stage_counts=[1, 2],
            )
        names = [e.name for e in ring.events]
        assert names.count("driver.begin") == 1
        assert names.count("driver.count.completed") == 2
        assert names.count("driver.end") == 1
        completed = [
            e for e in ring.events if e.name == "driver.count.completed"
        ]
        assert sorted(e.attrs["num_stages"] for e in completed) == [1, 2]

    def test_subprocess_events_forwarded_with_attribution(
        self, tiny_graph, small_cluster, tiny_database
    ):
        bus = TelemetryBus()
        ring = bus.add_sink(RingBufferSink())
        with using_bus(bus):
            search_all_stage_counts(
                tiny_graph,
                small_cluster,
                fresh_model(tiny_graph, small_cluster, tiny_database),
                budget_per_count=BUDGET,
                stage_counts=[1, 2],
                workers=2,
            )
        spawns = [
            e for e in ring.events if e.name == "driver.worker.spawn"
        ]
        assert len(spawns) == 2
        worker_events = [
            e for e in ring.events if e.pid != bus.pid
        ]
        # the workers' search events crossed the pipe with attribution
        assert any(e.name == "search.iteration" for e in worker_events)
        assert all("num_stages" in e.attrs for e in worker_events)
        worker_pids = {e.pid for e in worker_events}
        assert worker_pids == {
            e.attrs["worker_pid"] for e in spawns
        }


class TestRuntimeTelemetry:
    def test_record_trace_populates_tasks(self, tiny_graph, small_cluster):
        executor = Executor(tiny_graph, small_cluster, seed=0)
        config = balanced_config(tiny_graph, small_cluster, 2)
        run = executor.run(config, record_trace=True)
        assert run.tasks
        assert len(run.tasks) == run.tasks_total
        trace = chrome_trace_from_tasks(run.tasks)
        validate_chrome_trace(trace)

    def test_plain_run_records_nothing(self, tiny_graph, small_cluster):
        executor = Executor(tiny_graph, small_cluster, seed=0)
        config = balanced_config(tiny_graph, small_cluster, 2)
        with using_bus(TelemetryBus()):
            run = executor.run(config)
        assert run.tasks == ()

    def test_active_bus_gets_task_and_fault_events(
        self, tiny_graph, small_cluster
    ):
        executor = Executor(tiny_graph, small_cluster, seed=0)
        config = balanced_config(tiny_graph, small_cluster, 2)
        plan = FaultPlan(
            stragglers=(StragglerSlowdown(device_id=0, factor=2.0),),
            device_failures=(DeviceFailure(device_id=0, time=0.002),),
        )
        bus = TelemetryBus()
        ring = bus.add_sink(RingBufferSink())
        with using_bus(bus):
            run = executor.run(config, fault_plan=plan)
        names = [e.name for e in ring.events]
        assert "faults.straggler" in names
        assert "faults.device_failure" in names
        assert names.count("runtime.run") == 1
        task_events = [e for e in ring.events if e.name == "runtime.task"]
        assert len(task_events) == len(run.tasks)
        assert not run.completed


class TestSummary:
    def test_summarize_real_run(
        self, tiny_graph, small_cluster, tiny_database
    ):
        bus = TelemetryBus()
        ring = bus.add_sink(RingBufferSink())
        with using_bus(bus):
            search_all_stage_counts(
                tiny_graph,
                small_cluster,
                fresh_model(tiny_graph, small_cluster, tiny_database),
                budget_per_count=BUDGET,
                stage_counts=[1, 2],
            )
        summary = summarize_events(ring.events)
        assert summary["num_events"] == len(ring.events)
        assert summary["search"]["iterations"] > 0
        assert summary["search"]["best_objective"] is not None
        assert summary["events_by_source"]["search"] > 0
        json.dumps(summary)  # JSON-able throughout
        lines = render_summary(summary)
        assert lines and "events" in lines[0]


class TestCli:
    def test_run_log_and_trace_cli(self, tmp_path, capsys):
        from repro.cli import search_main, trace_main

        log = tmp_path / "events.jsonl"
        plan = tmp_path / "plan.json"
        rc = search_main([
            "--model", "gpt-2l", "--gpus", "4",
            "--iterations", "2", "--stage-counts", "2",
            "--run-log", str(log), "--output", str(plan), "--quiet",
        ])
        assert rc == 0
        events = validate_run_log(log)
        assert any(e.name == "search.iteration" for e in events)
        assert any(e.name == "runtime.task" for e in events)

        assert trace_main(["validate", str(log)]) == 0
        assert trace_main(["summary", str(log)]) == 0
        out = tmp_path / "trace.json"
        assert trace_main(["chrome", str(log), "-o", str(out)]) == 0
        validate_chrome_trace(json.loads(out.read_text()))
        capsys.readouterr()

    def test_trace_cli_rejects_bad_log(self, tmp_path, capsys):
        from repro.cli import trace_main

        bad = tmp_path / "bad.jsonl"
        bad.write_text("nonsense\n")
        assert trace_main(["summary", str(bad)]) == 1
        assert "invalid JSON" in capsys.readouterr().err

    def test_quiet_suppresses_console(self, tmp_path, capsys):
        from repro.cli import estimate_main, search_main

        plan = tmp_path / "plan.json"
        search_main([
            "--model", "gpt-2l", "--gpus", "4", "--iterations", "2",
            "--stage-counts", "2", "--output", str(plan), "--quiet",
            "--json",
        ])
        capsys.readouterr()
        rc = estimate_main([
            "--model", "gpt-2l", "--gpus", "4", str(plan),
            "--quiet", "--json",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert captured.err == ""
        json.loads(captured.out)  # --json output stays machine-readable

    def test_console_sink_renders_warnings(self, capsys):
        bus = TelemetryBus()
        bus.add_sink(ConsoleSink(min_level=WARNING))
        bus.emit("unit.warn", level=WARNING, detail="boom")
        bus.emit("unit.debug", level=DEBUG)
        err = capsys.readouterr().err
        assert "unit.warn" in err and "detail=boom" in err
        assert "unit.debug" not in err
