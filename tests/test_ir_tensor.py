"""Tests for repro.ir.tensor."""

import pytest

from repro.ir.tensor import (
    DTYPE_BYTES,
    TensorSpec,
    UnknownDtypeError,
    dtype_bytes,
)


class TestDtypeBytes:
    def test_known_dtypes(self):
        assert dtype_bytes("fp16") == 2
        assert dtype_bytes("fp32") == 4
        assert dtype_bytes("fp64") == 8
        assert dtype_bytes("int8") == 1

    def test_unknown_dtype_raises(self):
        with pytest.raises(UnknownDtypeError):
            dtype_bytes("fp8")

    def test_table_is_consistent(self):
        for name, size in DTYPE_BYTES.items():
            assert dtype_bytes(name) == size


class TestTensorSpec:
    def test_numel_and_bytes(self):
        spec = TensorSpec((4, 8), "fp16")
        assert spec.numel == 32
        assert spec.bytes == 64

    def test_scalar_shape(self):
        assert TensorSpec((), "fp32").numel == 1

    def test_invalid_dimension_raises(self):
        with pytest.raises(ValueError):
            TensorSpec((0, 4))
        with pytest.raises(ValueError):
            TensorSpec((-1,))

    def test_invalid_dtype_raises(self):
        with pytest.raises(UnknownDtypeError):
            TensorSpec((2,), "bogus")

    def test_with_dim(self):
        spec = TensorSpec((4, 8)).with_dim(1, 2)
        assert spec.shape == (4, 2)

    def test_split_even(self):
        spec = TensorSpec((4, 8)).split(1, 4)
        assert spec.shape == (4, 2)

    def test_split_uneven_raises(self):
        with pytest.raises(ValueError):
            TensorSpec((4, 9)).split(1, 2)

    def test_split_invalid_ways_raises(self):
        with pytest.raises(ValueError):
            TensorSpec((4, 8)).split(1, 0)

    def test_frozen(self):
        spec = TensorSpec((2, 2))
        with pytest.raises(AttributeError):
            spec.dtype = "fp32"
