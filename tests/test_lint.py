"""Tests for the repro.lint subsystem (Tier A and Tier B)."""

import json

import pytest

from repro.cluster import paper_cluster
from repro.lint import (
    CODES,
    ERROR,
    WARNING,
    Diagnostic,
    analyze_config,
    analyze_memory,
    analyze_primitives,
    analyze_request,
    analyze_source,
    analyze_structure,
    max_severity,
)
from repro.lint.config_rules import analyze_weight_state
from repro.lint.requests import analyze_plan_request
from repro.parallel import (
    ConfigError,
    ParallelConfig,
    StageConfig,
    balanced_config,
    validate_config,
)

from conftest import (
    make_activation_heavy_gpt,
    make_tight_cluster,
    make_tiny_gpt,
)


@pytest.fixture()
def graph():
    return make_tiny_gpt()


@pytest.fixture()
def cluster():
    return paper_cluster(4)


def good_config(graph):
    n = graph.num_ops
    return ParallelConfig(
        stages=[
            StageConfig.uniform(0, n // 2, 2, tp=1),
            StageConfig.uniform(n // 2, n, 2, tp=2),
        ],
        microbatch_size=2,
    )


class TestDiagnostic:
    def test_round_trip(self):
        diag = Diagnostic(
            "ACE201",
            "stage 0 is too big",
            location="stage 0",
            hint="shrink it",
            attrs={"peak_bytes": 1.0},
        )
        assert Diagnostic.from_json(diag.to_json()) == diag

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("ACE999", "nope")

    def test_titles_exist_for_every_code(self):
        for code, title in CODES.items():
            assert code.startswith("ACE") and title

    def test_render_mentions_code_and_location(self):
        diag = Diagnostic("ACE101", "bad span", location="stage 3")
        text = diag.render()
        assert "ACE101" in text and "stage 3" in text

    def test_max_severity(self):
        warn = Diagnostic("ACE301", "odd", severity=WARNING)
        err = Diagnostic("ACE301", "bad")
        assert max_severity([]) is None
        assert max_severity([warn]) == WARNING
        assert max_severity([warn, err]) == ERROR


class TestAnalyzeStructure:
    def test_clean_config(self, graph, cluster):
        assert analyze_structure(good_config(graph), graph, cluster) == []

    def test_balanced_configs_clean(self, graph, cluster):
        for stages in (1, 2, 4):
            config = balanced_config(graph, cluster, stages)
            assert analyze_structure(config, graph, cluster) == []

    def breakers(self, graph):
        """(mutator, expected code) pairs covering every ACE1xx rule."""
        def incomplete(config):
            n = graph.num_ops
            return ParallelConfig(
                stages=[StageConfig.uniform(0, n - 1, 4)],
                microbatch_size=4,
            )

        def short(config):
            n = graph.num_ops
            return ParallelConfig(
                stages=[StageConfig.uniform(0, n, 2)], microbatch_size=2
            )

        def mutate(apply):
            def build(config):
                apply(config)
                return config
            return build

        return [
            (incomplete, "ACE103"),
            (short, "ACE111"),
            (mutate(lambda c: c.stages[0].tp.__setitem__(0, 2)), "ACE122"),
            (mutate(lambda c: c.stages[0].tp.__setitem__(
                slice(None), 0)), "ACE120"),
            (mutate(lambda c: c.stages[0].tp_dim.__setitem__(
                slice(None), 99)), "ACE131"),
            (mutate(lambda c: c.stages[0].tp_dim.__setitem__(0, -1)),
             "ACE130"),
            (mutate(lambda c: setattr(c, "microbatch_size", 3)), "ACE140"),
            (mutate(lambda c: setattr(c, "microbatch_size", 1)), "ACE141"),
        ]

    def test_first_diagnostic_matches_validate_config(
        self, graph, cluster
    ):
        """The analyzer's first finding IS the legacy ConfigError."""
        for build, code in self.breakers(graph):
            config = build(good_config(graph))
            diagnostics = analyze_structure(config, graph, cluster)
            assert diagnostics, f"nothing found for {code}"
            assert diagnostics[0].code == code
            with pytest.raises(ConfigError) as exc_info:
                validate_config(config, graph, cluster)
            assert str(exc_info.value) == diagnostics[0].message

    def test_collects_multiple_violations(self, graph, cluster):
        config = good_config(graph)
        config.stages[0].tp[0] = 2  # ACE122
        config.microbatch_size = 3  # ACE140
        codes = {
            d.code for d in analyze_structure(config, graph, cluster)
        }
        assert {"ACE122", "ACE140"} <= codes

    def test_gap_in_spans(self, graph, cluster):
        config = good_config(graph)
        config.stages[1].start += 1
        config.stages[1].tp = config.stages[1].tp[1:]
        config.stages[1].dp = config.stages[1].dp[1:]
        config.stages[1].tp_dim = config.stages[1].tp_dim[1:]
        config.stages[1].recompute = config.stages[1].recompute[1:]
        diagnostics = analyze_structure(config, graph, cluster)
        assert diagnostics[0].code == "ACE101"


class TestAnalyzeMemory:
    def test_feasible_config_clean(self, graph, cluster):
        config = balanced_config(graph, cluster, 2)
        assert analyze_memory(config, graph, cluster) == []

    def test_oom_config_reports_ace201_with_overage(self):
        graph = make_activation_heavy_gpt()
        cluster = make_tight_cluster(num_gpus=4, memory_mb=64)
        config = balanced_config(graph, cluster, 2, microbatch_size=16)
        diagnostics = analyze_memory(config, graph, cluster)
        assert diagnostics
        for diag in diagnostics:
            assert diag.code == "ACE201"
            assert diag.attrs["overage_bytes"] > 0
            assert (
                diag.attrs["peak_bytes"]
                == diag.attrs["limit_bytes"] + diag.attrs["overage_bytes"]
            )

    def test_analyze_config_runs_memory_only_when_structure_clean(
        self, graph, cluster
    ):
        config = good_config(graph)
        config.microbatch_size = 3
        codes = {d.code for d in analyze_config(config, graph, cluster)}
        assert "ACE140" in codes
        assert not any(c.startswith("ACE2") for c in codes)

    def test_weight_state_bound(self, graph):
        tight = make_tight_cluster(num_gpus=1, memory_mb=0.05)
        diagnostics = analyze_weight_state(graph, tight)
        assert [d.code for d in diagnostics] == ["ACE202"]
        roomy = paper_cluster(4)
        assert analyze_weight_state(graph, roomy) == []


class TestAnalyzePrimitives:
    def test_registered_table_clean(self):
        assert analyze_primitives() == []

    def test_unknown_name(self):
        diagnostics = analyze_primitives(["inc-tp", "no-such-prim"])
        assert [d.code for d in diagnostics] == ["ACE210"]


class TestAnalyzeRequest:
    def test_valid_request_clean(self):
        request, diagnostics = analyze_request(
            {"model": "gpt-2l", "gpus": 4}
        )
        assert request is not None
        assert diagnostics == []

    def test_parametric_model_accepted(self):
        _, diagnostics = analyze_request({"model": "gpt-4l", "gpus": 8})
        assert diagnostics == []

    def test_malformed_payload_is_ace330(self):
        request, diagnostics = analyze_request({"gpus": 4})
        assert request is None
        assert [d.code for d in diagnostics] == ["ACE330"]

    def test_unknown_field_is_ace330(self):
        request, diagnostics = analyze_request(
            {"model": "gpt-2l", "bogus": 1}
        )
        assert request is None
        assert [d.code for d in diagnostics] == ["ACE330"]

    def test_unknown_model_is_ace204(self):
        _, diagnostics = analyze_request({"model": "no-such-model"})
        assert [d.code for d in diagnostics] == ["ACE204"]

    def test_bad_cluster_size_is_ace203(self):
        from repro.service.protocol import PlanRequest

        request = PlanRequest(model="gpt-2l", gpus=12)
        codes = [d.code for d in analyze_plan_request(request)]
        assert codes == ["ACE203"]


class TestTierBDeterminism:
    def lint(self, source, module_path="core/x.py"):
        return analyze_source(
            source, "fixture.py", module_path=module_path
        )

    def test_unseeded_random_in_core(self):
        diagnostics = self.lint(
            "import random\nr = random.Random()\n"
        )
        assert [d.code for d in diagnostics] == ["ACE901"]

    def test_seeded_random_ok(self):
        assert self.lint(
            "import random\nr = random.Random(42)\n"
        ) == []

    def test_module_level_random_banned(self):
        diagnostics = self.lint(
            "import random\nx = random.randint(0, 4)\n"
        )
        assert [d.code for d in diagnostics] == ["ACE901"]

    def test_numpy_alias_resolved(self):
        diagnostics = self.lint(
            "import numpy as np\nx = np.random.rand(3)\n"
        )
        assert [d.code for d in diagnostics] == ["ACE901"]

    def test_unseeded_default_rng_flagged_seeded_ok(self):
        bad = self.lint(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        assert [d.code for d in bad] == ["ACE901"]
        assert self.lint(
            "import numpy as np\nrng = np.random.default_rng(0)\n"
        ) == []

    def test_wall_clock_banned_monotonic_ok(self):
        assert [d.code for d in self.lint(
            "import time\nt = time.time()\n"
        )] == ["ACE901"]
        assert self.lint(
            "import time\nt = time.perf_counter()\n"
        ) == []

    def test_from_import_alias(self):
        diagnostics = self.lint(
            "from time import time as now\nt = now()\n"
        )
        assert [d.code for d in diagnostics] == ["ACE901"]

    def test_non_deterministic_module_exempt(self):
        assert self.lint(
            "import time\nt = time.time()\n",
            module_path="telemetry/bus.py",
        ) == []


class TestTierBTelemetry:
    def lint(self, source):
        return analyze_source(
            source, "fixture.py", module_path="service/x.py"
        )

    def test_registered_literal_ok(self):
        assert self.lint(
            'bus.emit("service.start", source="service")\n'
        ) == []

    def test_unregistered_literal_is_ace903(self):
        diagnostics = self.lint('bus.emit("service.bogus.name")\n')
        assert [d.code for d in diagnostics] == ["ACE903"]

    def test_registry_constant_ok(self):
        assert self.lint(
            "from repro.telemetry.events import SERVICE_START\n"
            "bus.emit(SERVICE_START)\n"
        ) == []

    def test_unknown_registry_constant_is_ace903(self):
        diagnostics = self.lint(
            "from repro.telemetry.events import NOPE\nbus.emit(NOPE)\n"
        )
        assert [d.code for d in diagnostics] == ["ACE903"]

    def test_dynamic_name_is_ace902(self):
        diagnostics = self.lint('bus.emit("x" + suffix)\n')
        assert [d.code for d in diagnostics] == ["ACE902"]

    def test_suppression_comment(self):
        assert self.lint(
            'bus.emit(name or "x.y")  # lint: allow(ACE902)\n'
        ) == []


class TestTierBSerializationAndExcepts:
    def lint(self, source):
        return analyze_source(
            source, "fixture.py", module_path="telemetry/x.py"
        )

    def test_to_json_without_from_json(self):
        diagnostics = self.lint(
            "class Thing:\n"
            "    def to_json(self):\n"
            "        return {}\n"
        )
        assert [d.code for d in diagnostics] == ["ACE904"]

    def test_round_trip_class_ok(self):
        assert self.lint(
            "class Thing:\n"
            "    def to_json(self):\n"
            "        return {}\n"
            "    @classmethod\n"
            "    def from_json(cls, data):\n"
            "        return cls()\n"
        ) == []

    def test_bare_except(self):
        diagnostics = self.lint(
            "try:\n    x = 1\nexcept:\n    pass\n"
        )
        assert [d.code for d in diagnostics] == ["ACE905"]


class TestCLI:
    def run(self, *argv):
        from repro.lint.cli import lint_main

        return lint_main(list(argv))

    def test_clean_tree_exits_zero(self, capsys):
        assert self.run("src/repro/lint", "--format", "json") == 0
        report = json.loads(capsys.readouterr().out)
        assert report["counts"]["error"] == 0
        assert report["files_checked"] > 0

    def test_bad_artifact_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "deadbeefdeadbeef.ckpt.json"
        bad.write_text("{not json")
        assert self.run(str(bad)) == 1
        out = capsys.readouterr().out
        assert "ACE320" in out

    def test_select_filters_codes(self, tmp_path, capsys):
        bad = tmp_path / "WRONG.plan.json"
        bad.write_text(json.dumps({"plan": {}, "objective": "x"}))
        # The fixture only violates ACE31x rules, so selecting an
        # unrelated family reports clean while ACE31x still fails.
        assert self.run(str(bad), "--select", "ACE9") == 0
        assert self.run(str(bad), "--rule", "ACE311") == 1

    def test_json_report_written(self, tmp_path, capsys):
        target = tmp_path / "report.json"
        code = self.run(
            "src/repro/lint/diagnostics.py", "-o", str(target)
        )
        assert code == 0
        report = json.loads(target.read_text())
        assert report["files_checked"] == 1

    def test_missing_path_exits_two(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            self.run("no/such/path")
        assert exc_info.value.code == 2

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        assert self.run(str(broken)) == 2
