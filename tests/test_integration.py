"""Cross-module integration tests: full search -> deploy pipelines."""

import pytest

from repro.core import (
    AcesoSearch,
    SearchBudget,
    search_all_stage_counts,
)
from repro.parallel import (
    balanced_config,
    imbalanced_gpu_config,
    imbalanced_op_config,
    validate_config,
)
from repro.perfmodel import PerfModel
from repro.profiling import ProfileDatabase, SimulatedProfiler
from repro.runtime import Executor

from conftest import (
    make_activation_heavy_gpt,
    make_tight_cluster,
    make_tiny_gpt,
)


class TestSearchDeployLoop:
    def test_found_config_executes(self, tiny_graph, small_cluster,
                                   tiny_perf_model, tiny_executor):
        multi = search_all_stage_counts(
            tiny_graph, small_cluster, tiny_perf_model,
            budget_per_count={"max_iterations": 6},
        )
        best = multi.best.best_config
        validate_config(best, tiny_graph, small_cluster)
        run = tiny_executor.run(best)
        assert not run.oom
        assert run.iteration_time > 0

    def test_search_beats_naive_on_executor(self, tiny_graph, small_cluster,
                                            tiny_perf_model, tiny_executor):
        naive = balanced_config(tiny_graph, small_cluster, 4)
        multi = search_all_stage_counts(
            tiny_graph, small_cluster, tiny_perf_model,
            budget_per_count={"max_iterations": 10},
        )
        best = multi.best.best_config
        assert (
            tiny_executor.run(best).iteration_time
            <= tiny_executor.run(naive).iteration_time * 1.05
        )

    def test_memory_pressured_end_to_end(self):
        """OOM start -> feasible, deployable plan with recomputation."""
        graph = make_activation_heavy_gpt()
        cluster = make_tight_cluster(num_gpus=4, memory_mb=64)
        database = SimulatedProfiler(cluster, seed=0).profile(graph)
        perf_model = PerfModel(graph, cluster, database)
        init = balanced_config(graph, cluster, 2, microbatch_size=16)
        assert perf_model.estimate(init).is_oom
        search = AcesoSearch(graph, cluster, perf_model)
        result = search.run(init, SearchBudget(max_iterations=12))
        assert result.is_feasible
        executor = Executor(graph, cluster, seed=0)
        run = executor.run(result.best_config)
        assert not run.oom


class TestInitRobustness:
    """Exp#7 in miniature: different starts converge to similar quality."""

    def test_three_inits_converge(self, tiny_graph, small_cluster,
                                  tiny_perf_model):
        inits = {
            "balanced": balanced_config(tiny_graph, small_cluster, 4),
            "imbalance-op": imbalanced_op_config(
                tiny_graph, small_cluster, 4
            ),
            "imbalance-gpu": imbalanced_gpu_config(
                tiny_graph, small_cluster, 4
            ),
        }
        finals = {}
        for name, init in inits.items():
            search = AcesoSearch(tiny_graph, small_cluster, tiny_perf_model)
            result = search.run(init, SearchBudget(max_iterations=12))
            finals[name] = result.best_objective
        best = min(finals.values())
        for name, value in finals.items():
            assert value <= best * 1.15, f"{name} diverged: {finals}"


class TestDatabaseReuse:
    def test_profile_reused_across_layer_counts(self, small_cluster):
        """The paper's database reuse: profiling gpt-4l covers gpt-8l."""
        profiler = SimulatedProfiler(small_cluster, seed=0)
        database = profiler.profile(make_tiny_gpt(num_layers=4))
        cost_before = profiler.profile_seconds
        profiler.profile(make_tiny_gpt(num_layers=8), database=database)
        # Same unique op signatures -> nothing new measured.
        assert profiler.profile_seconds == cost_before

    def test_database_roundtrip_preserves_estimates(
        self, tiny_graph, small_cluster, tiny_database, tmp_path
    ):
        path = tmp_path / "db.json"
        tiny_database.save(path)
        reloaded = ProfileDatabase.load(path)
        a = PerfModel(tiny_graph, small_cluster, tiny_database)
        b = PerfModel(tiny_graph, small_cluster, reloaded)
        config = balanced_config(tiny_graph, small_cluster, 2)
        assert a.estimate(config).iteration_time == pytest.approx(
            b.estimate(config).iteration_time
        )


class TestScalability:
    def test_search_handles_many_layers(self, small_cluster):
        """Exp#3 in miniature: a deep model still searches fine."""
        graph = make_tiny_gpt(num_layers=64)
        database = SimulatedProfiler(small_cluster, seed=0).profile(graph)
        perf_model = PerfModel(graph, small_cluster, database)
        init = balanced_config(graph, small_cluster, 4)
        search = AcesoSearch(graph, small_cluster, perf_model)
        result = search.run(init, SearchBudget(max_iterations=3))
        assert result.best_objective < float("inf")
        assert graph.num_ops > 500
