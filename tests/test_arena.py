"""The strategy arena: equal-budget tournaments over registered searchers."""

import dataclasses
import json

import pytest

from repro.arena import (
    ArenaEntry,
    EntryOutcome,
    TournamentResult,
    run_tournament,
)
from repro.core import Searcher, StrategyError, register_searcher
from repro.core.budget import BudgetKwargsError
from repro.core.searcher import unregister_searcher
from repro.telemetry import CallbackSink, TelemetryBus, using_bus
from repro.telemetry.events import (
    ARENA_BEGIN,
    ARENA_END,
    ARENA_ENTRY_BEGIN,
    ARENA_ENTRY_END,
    ARENA_ENTRY_FAILED,
    is_registered,
)

ENTRIES = [
    ArenaEntry(strategy="greedy"),
    ArenaEntry(strategy="mcmc"),
    ArenaEntry(strategy="bandit"),
]
BUDGET = {"max_estimates": 300}


def race(graph, cluster, database, **kwargs):
    kwargs.setdefault("entries", ENTRIES)
    kwargs.setdefault("stage_count", 2)
    kwargs.setdefault("budget_per_entry", dict(BUDGET))
    return run_tournament(graph, cluster, database, **kwargs)


def deterministic_outcome(outcome: EntryOutcome) -> dict:
    data = outcome.to_json()
    data.pop("elapsed_seconds")
    return data


class TestTournament:
    def test_every_strategy_reports(
        self, tiny_graph, small_cluster, tiny_database
    ):
        result = race(tiny_graph, small_cluster, tiny_database)
        assert [o.strategy for o in result.outcomes] == [
            "greedy", "mcmc", "bandit",
        ]
        for outcome in result.outcomes:
            assert not outcome.failed
            assert outcome.best_objective > 0
            assert outcome.best_signature
            assert outcome.curve
            # Curves are (iteration index, best objective) pairs —
            # deterministic, monotonically non-increasing in quality.
            bests = [point[1] for point in outcome.curve]
            assert bests == sorted(bests, reverse=True)
        assert result.winner is not None
        assert result.winner.feasible

    def test_reruns_are_bit_identical(
        self, tiny_graph, small_cluster, tiny_database
    ):
        first = race(tiny_graph, small_cluster, tiny_database)
        second = race(tiny_graph, small_cluster, tiny_database)
        assert [deterministic_outcome(o) for o in first.outcomes] == [
            deterministic_outcome(o) for o in second.outcomes
        ]

    def test_pool_path_matches_serial(
        self, tiny_graph, small_cluster, tiny_database
    ):
        serial = race(tiny_graph, small_cluster, tiny_database)
        pooled = race(
            tiny_graph, small_cluster, tiny_database, workers=2
        )
        assert [deterministic_outcome(o) for o in serial.outcomes] == [
            deterministic_outcome(o) for o in pooled.outcomes
        ]

    def test_json_round_trip(
        self, tiny_graph, small_cluster, tiny_database, tmp_path
    ):
        result = race(
            tiny_graph, small_cluster, tiny_database, label="round-trip"
        )
        path = tmp_path / "BENCH_strategies.json"
        result.write_json(path)
        data = json.loads(path.read_text())
        assert data["label"] == "round-trip"
        assert data["winner"] == result.winner.strategy
        restored = TournamentResult.from_json(data)
        assert [deterministic_outcome(o) for o in restored.outcomes] == [
            deterministic_outcome(o) for o in result.outcomes
        ]
        assert restored.budget == dict(BUDGET)

    def test_failing_strategy_becomes_failure_outcome(
        self, tiny_graph, small_cluster, tiny_database
    ):
        @dataclasses.dataclass
        class ExplodingOptions:
            seed: int = 0

        @register_searcher
        class ExplodingSearcher(Searcher):
            strategy = "exploding-test"
            options_class = ExplodingOptions

            def run(self, init_config, budget, *, deadline=None):
                raise RuntimeError("kaboom")

        try:
            result = race(
                tiny_graph, small_cluster, tiny_database,
                entries=[
                    ArenaEntry(strategy="exploding-test"),
                    ArenaEntry(strategy="greedy"),
                ],
            )
        finally:
            unregister_searcher("exploding-test")
        exploded, greedy = result.outcomes
        assert exploded.failed
        assert "kaboom" in exploded.error
        assert not greedy.failed
        assert result.winner.strategy == "greedy"

    def test_validation_happens_before_any_search(
        self, tiny_graph, small_cluster, tiny_database
    ):
        with pytest.raises(StrategyError):
            race(
                tiny_graph, small_cluster, tiny_database,
                entries=[ArenaEntry(strategy="no-such-strategy")],
            )
        with pytest.raises(StrategyError):
            race(
                tiny_graph, small_cluster, tiny_database,
                entries=[
                    ArenaEntry(
                        strategy="mcmc",
                        strategy_kwargs={"bogus": 1},
                    )
                ],
            )
        with pytest.raises(BudgetKwargsError):
            race(
                tiny_graph, small_cluster, tiny_database,
                budget_per_entry={"max_iteration": 5},
            )
        with pytest.raises(ValueError, match="no arena entries"):
            race(
                tiny_graph, small_cluster, tiny_database, entries=[]
            )

    def test_lifecycle_events_are_registered_and_attributed(
        self, tiny_graph, small_cluster, tiny_database
    ):
        events = []
        bus = TelemetryBus()
        bus.add_sink(CallbackSink(events.append))
        with using_bus(bus):
            race(tiny_graph, small_cluster, tiny_database)
        names = [e.name for e in events]
        assert all(is_registered(name) for name in names)
        assert names.count(ARENA_BEGIN) == 1
        assert names.count(ARENA_END) == 1
        assert names.count(ARENA_ENTRY_BEGIN) == len(ENTRIES)
        assert names.count(ARENA_ENTRY_END) == len(ENTRIES)
        assert ARENA_ENTRY_FAILED not in names
        end = next(e for e in events if e.name == ARENA_END)
        assert end.attrs["winner"] in {e.strategy for e in ENTRIES}

    def test_seed_sweep_entries_are_distinct_lanes(
        self, tiny_graph, small_cluster, tiny_database
    ):
        result = race(
            tiny_graph, small_cluster, tiny_database,
            entries=[
                ArenaEntry(strategy="mcmc", seed=seed)
                for seed in (0, 1, 2)
            ],
        )
        assert [o.seed for o in result.outcomes] == [0, 1, 2]
        best = result.outcome_for("mcmc")
        assert best.best_objective == min(
            o.best_objective for o in result.outcomes
        )


class TestArenaEntry:
    def test_options_fold_in_the_seed(self):
        entry = ArenaEntry(
            strategy="mcmc", seed=7,
            strategy_kwargs={"initial_temperature": 0.5},
        )
        options = entry.options()
        assert options.seed == 7
        assert options.initial_temperature == 0.5
        assert entry.name == "mcmc#7"

    def test_json_round_trip(self):
        entry = ArenaEntry(
            strategy="bandit", seed=2,
            strategy_kwargs={"exploration": 2.0},
        )
        assert ArenaEntry.from_json(entry.to_json()) == entry
        bare = ArenaEntry(strategy="greedy")
        assert ArenaEntry.from_json(bare.to_json()) == bare
