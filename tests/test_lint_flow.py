"""Tier-C flow analysis: fixtures, taint unit suite, baseline, SARIF,
total diagnostic ordering, and the determinism property.

The fixture matrix pins *exact* codes: each negative fixture under
``tests/fixtures/flow/`` must produce precisely its advertised
diagnostics, and every ``clean_*`` fixture must produce none — zero
false positives is part of the Tier-C contract.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.baseline import (
    apply_baseline,
    baseline_key,
    load_baseline,
    write_baseline,
)
from repro.lint.cli import lint_main
from repro.lint.diagnostics import Diagnostic, sorted_diagnostics
from repro.lint.flow_rules import (
    analyze_flow_source,
    analyze_flow_tree,
)
from repro.lint.sarif import to_sarif

FIXTURES = Path(__file__).parent / "fixtures" / "flow"
REPO_ROOT = Path(__file__).parent.parent


def codes(diagnostics):
    return [d.code for d in diagnostics]


# ---------------------------------------------------------------------
# fixture matrix: exact codes per rule
# ---------------------------------------------------------------------
FIXTURE_CODES = {
    "taint_json_dump.py": ["ACE920"],
    "taint_write_json_atomic.py": ["ACE920"],
    "taint_digest.py": ["ACE921"],
    "taint_emit.py": ["ACE922"],
    "taint_fs_order.py": ["ACE920"],
    "taint_set_order.py": ["ACE920"],
    "taint_call_summary.py": ["ACE920"],
    "taint_param_sink.py": ["ACE920"],
    "conc_offlock_write.py": ["ACE930"],
    "conc_blocking_under_lock.py": ["ACE931"],
    "conc_fork_after_thread.py": ["ACE932"],
    "conc_unjoined_thread.py": ["ACE933"],
    "conc_pool_no_shutdown.py": ["ACE934"],
    "conc_rmw_offlock.py": ["ACE935"],
    "conc_global_mutation.py": ["ACE936"],
    "res_file_leak.py": ["ACE940"],
    "res_socket_leak.py": ["ACE941"],
    "res_tempfile_leak.py": ["ACE942"],
}

CLEAN_FIXTURES = (
    "clean_determinism.py",
    "clean_concurrency.py",
    "clean_resources.py",
)


class TestFixtures:
    @pytest.mark.parametrize(
        "name,expected", sorted(FIXTURE_CODES.items())
    )
    def test_negative_fixture_exact_codes(self, name, expected):
        diagnostics = analyze_flow_tree(FIXTURES / name)
        assert codes(diagnostics) == expected

    @pytest.mark.parametrize("name", CLEAN_FIXTURES)
    def test_clean_fixture_no_findings(self, name):
        assert analyze_flow_tree(FIXTURES / name) == []

    def test_matrix_covers_every_fixture(self):
        on_disk = {p.name for p in FIXTURES.glob("*.py")}
        assert on_disk == set(FIXTURE_CODES) | set(CLEAN_FIXTURES)


# ---------------------------------------------------------------------
# taint propagation unit suite
# ---------------------------------------------------------------------
def flow(source: str):
    return analyze_flow_source(source, "unit.py")


class TestTaintPropagation:
    def test_assignment_chain(self):
        diags = flow(
            "import json, time\n"
            "def f(out):\n"
            "    a = time.time()\n"
            "    b = a\n"
            "    c = b\n"
            "    json.dump(c, out)\n"
        )
        assert codes(diags) == ["ACE920"]
        assert "wallclock" in diags[0].message

    def test_container_propagation(self):
        diags = flow(
            "import json, time\n"
            "def f(out):\n"
            "    items = []\n"
            "    items.append(time.time())\n"
            "    json.dump({'items': items}, out)\n"
        )
        assert codes(diags) == ["ACE920"]

    def test_call_summary_one_level(self):
        diags = flow(
            "import json, time\n"
            "def helper():\n"
            "    return time.time()\n"
            "def f(out):\n"
            "    json.dump(helper(), out)\n"
        )
        assert codes(diags) == ["ACE920"]

    def test_param_flow_through_callee(self):
        diags = flow(
            "import json, time\n"
            "def wrap(x):\n"
            "    return {'v': x}\n"
            "def f(out):\n"
            "    json.dump(wrap(time.time()), out)\n"
        )
        assert codes(diags) == ["ACE920"]

    def test_param_sink_reported_at_call_site(self):
        diags = flow(
            "import json, time\n"
            "def save(x, out):\n"
            "    json.dump(x, out)\n"
            "def f(out):\n"
            "    save(time.time(), out)\n"
        )
        assert codes(diags) == ["ACE920"]
        assert "save()" in diags[0].message
        # The finding anchors at f's call site, not inside save.
        assert diags[0].location.startswith("unit.py:5")

    def test_sorted_sanitizes_order(self):
        assert flow(
            "import json, os\n"
            "def f(root, out):\n"
            "    json.dump(sorted(os.listdir(root)), out)\n"
        ) == []

    def test_seeded_rng_is_clean(self):
        assert flow(
            "import json, random\n"
            "def f(seed, out):\n"
            "    rng = random.Random(seed)\n"
            "    json.dump(rng.random(), out)\n"
        ) == []

    def test_unseeded_rng_is_tainted(self):
        diags = flow(
            "import json, random\n"
            "def f(out):\n"
            "    rng = random.Random()\n"
            "    json.dump(rng.random(), out)\n"
        )
        assert codes(diags) == ["ACE920"]
        assert "rng" in diags[0].message

    def test_sanitizer_does_not_strip_value_taint(self):
        # sorted() fixes *order* nondeterminism, not value taint.
        diags = flow(
            "import json, time\n"
            "def f(out):\n"
            "    json.dump(sorted([time.time()]), out)\n"
        )
        assert codes(diags) == ["ACE920"]

    def test_branch_join_unions_taint(self):
        diags = flow(
            "import json, time\n"
            "def f(flag, out):\n"
            "    v = 0\n"
            "    if flag:\n"
            "        v = time.time()\n"
            "    json.dump(v, out)\n"
        )
        assert codes(diags) == ["ACE920"]

    def test_loop_carried_taint(self):
        diags = flow(
            "import json, time\n"
            "def f(n, out):\n"
            "    total = 0\n"
            "    for _ in range(n):\n"
            "        total = total + time.time()\n"
            "    json.dump(total, out)\n"
        )
        assert codes(diags) == ["ACE920"]

    def test_monotonic_is_not_a_source(self):
        assert flow(
            "import json, time\n"
            "def f(out):\n"
            "    json.dump(time.monotonic(), out)\n"
        ) == []

    def test_allow_comment_suppresses(self):
        assert flow(
            "import json, time\n"
            "def f(out):\n"
            "    json.dump(time.time(), out)"
            "  # lint: allow(ACE920)\n"
        ) == []


# ---------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------
class TestBaseline:
    def diag(self, code="ACE920", message="m", location="a.py:3:1"):
        return Diagnostic(code, message, location=location)

    def test_key_ignores_line_numbers(self):
        a = self.diag(location="a.py:3:1")
        b = self.diag(location="a.py:99:7")
        assert baseline_key(a) == baseline_key(b)

    def test_roundtrip_and_apply(self, tmp_path):
        path = tmp_path / "baseline.json"
        known = [self.diag(message="old finding")]
        write_baseline(known, path)
        current = known + [self.diag(message="new finding")]
        new, matched, stale = apply_baseline(
            current, load_baseline(path)
        )
        assert matched == 1
        assert [d.message for d in new] == ["new finding"]
        assert stale == []

    def test_stale_entries_surface(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([self.diag(message="paid down")], path)
        new, matched, stale = apply_baseline([], load_baseline(path))
        assert new == [] and matched == 0
        assert stale == [("a.py", "ACE920", "paid down")]

    def test_multiset_semantics(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([self.diag()], path)
        twice = [self.diag(location="a.py:1:1"),
                 self.diag(location="a.py:2:1")]
        new, matched, _ = apply_baseline(twice, load_baseline(path))
        assert matched == 1 and len(new) == 1

    def test_written_file_is_deterministic(self, tmp_path):
        one, two = tmp_path / "1.json", tmp_path / "2.json"
        findings = [self.diag(message="x"), self.diag(message="y")]
        write_baseline(findings, one)
        write_baseline(list(reversed(findings)), two)
        assert one.read_bytes() == two.read_bytes()


# ---------------------------------------------------------------------
# SARIF
# ---------------------------------------------------------------------
class TestSarif:
    def test_structure_and_location(self):
        diags = analyze_flow_tree(FIXTURES / "taint_json_dump.py")
        doc = to_sarif(diags)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == (
            ["ACE920"]
        )
        result = run["results"][0]
        assert result["ruleId"] == "ACE920"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] > 0 and region["startColumn"] > 0

    def test_empty_run_is_valid(self):
        doc = to_sarif([])
        assert doc["runs"][0]["results"] == []
        assert doc["runs"][0]["tool"]["driver"]["rules"] == []


# ---------------------------------------------------------------------
# total diagnostic order (satellite bugfix)
# ---------------------------------------------------------------------
class TestTotalOrder:
    def test_sort_key_orders_path_line_col_code(self):
        diags = [
            Diagnostic("ACE920", "m", location="b.py:1:1"),
            Diagnostic("ACE905", "m", location="a.py:10"),
            Diagnostic("ACE940", "m", location="a.py:2:7"),
            Diagnostic("ACE921", "m", location="a.py:2:3"),
            Diagnostic("ACE920", "m", location="a.py:2:3"),
            Diagnostic("ACE101", "config-level, no location"),
        ]
        ordered = sorted_diagnostics(diags)
        assert [
            (d.location, d.code) for d in ordered
        ] == [
            ("", "ACE101"),
            ("a.py:2:3", "ACE920"),
            ("a.py:2:3", "ACE921"),
            ("a.py:2:7", "ACE940"),
            ("a.py:10", "ACE905"),
            ("b.py:1:1", "ACE920"),
        ]

    def test_sort_is_analyzer_order_independent(self):
        diags = analyze_flow_tree(FIXTURES)
        assert diags == sorted_diagnostics(reversed(diags))

    def test_cli_report_is_byte_identical_across_runs(
        self, tmp_path, capsys
    ):
        outs = []
        for name in ("one.json", "two.json"):
            target = tmp_path / name
            code = lint_main([
                "--tier", "B,C", str(FIXTURES),
                "--format", "json", "-o", str(target),
            ])
            assert code == 1
            capsys.readouterr()
            outs.append(target.read_bytes())
        assert outs[0] == outs[1]


# ---------------------------------------------------------------------
# determinism property
# ---------------------------------------------------------------------
class TestDeterminism:
    def test_same_diagnostics_across_runs(self):
        first = analyze_flow_tree(FIXTURES)
        second = analyze_flow_tree(FIXTURES)
        assert [d.to_json() for d in first] == [
            d.to_json() for d in second
        ]
        assert first  # the fixture tree is not trivially empty

    def test_byte_identical_under_hashseed_variation(self, tmp_path):
        """PYTHONHASHSEED must not leak into the report bytes."""
        reports = []
        for seed in ("0", "1", "31337"):
            target = tmp_path / f"report-{seed}.json"
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            result = subprocess.run(
                [
                    sys.executable, "-m", "repro.lint.cli",
                    "--tier", "C", str(FIXTURES),
                    "--format", "json", "-o", str(target),
                ],
                cwd=REPO_ROOT,
                env=env,
                capture_output=True,
                text=True,
            )
            assert result.returncode == 1, result.stderr
            reports.append(target.read_bytes())
        assert reports[0] == reports[1] == reports[2]
        assert json.loads(reports[0])["counts"]["error"] > 0


# ---------------------------------------------------------------------
# CLI tier selection / baseline gating
# ---------------------------------------------------------------------
class TestCLI:
    def test_tier_c_gates_on_fixtures(self, capsys):
        assert lint_main(["--tier", "C", str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "tier C" in out

    def test_default_tiers_exclude_c(self, capsys):
        # Tier B alone sees none of the flow-only violations.
        clean = FIXTURES / "res_file_leak.py"
        assert lint_main([str(clean)]) == 0
        capsys.readouterr()

    def test_unknown_tier_exits_two(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            lint_main(["--tier", "Z", str(FIXTURES)])
        assert exc_info.value.code == 2

    def test_baseline_gates_new_findings_only(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert lint_main([
            "--tier", "C", str(FIXTURES),
            "--baseline", str(baseline), "--update-baseline",
        ]) == 0
        capsys.readouterr()
        # Same tree against its own baseline: clean.
        assert lint_main([
            "--tier", "C", str(FIXTURES),
            "--baseline", str(baseline), "--format", "json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["counts"]["error"] == 0
        assert report["baseline"]["new"] == 0
        assert report["baseline"]["matched"] > 0

    def test_committed_repo_baseline_is_current(self, capsys):
        """src/repro + scripts stay clean against lint-baseline.json."""
        assert lint_main([
            "--tier", "C",
            str(REPO_ROOT / "src" / "repro"),
            str(REPO_ROOT / "scripts"),
            "--baseline", str(REPO_ROOT / "lint-baseline.json"),
        ]) == 0
        capsys.readouterr()

    def test_sarif_output(self, tmp_path, capsys):
        target = tmp_path / "report.sarif"
        code = lint_main([
            "--tier", "C", str(FIXTURES / "taint_json_dump.py"),
            "--format", "sarif", "-o", str(target),
        ])
        assert code == 1
        capsys.readouterr()
        doc = json.loads(target.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"][0]["ruleId"] == "ACE920"
