"""Elastic subsystem: churn timelines, heterogeneous clusters, the
rebalancing controller, and churn-aware serving."""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_tiny_gpt
from repro.cluster import ClusterSpec, DeviceSpec, a100, mixed_cluster, v100
from repro.elastic import (
    CHURN_FORMAT_VERSION,
    ChurnEvent,
    ChurnTimeline,
    ControllerPolicy,
    ElasticController,
    random_churn_timeline,
)
from repro.faults import (
    DeviceFailure,
    FaultPlan,
    LinkDegradation,
    NoSurvivorsError,
    StragglerSlowdown,
    adapt_config,
    degrade_cluster,
    shrink_cluster,
    shrink_cluster_checked,
)
from repro.parallel import balanced_config
from repro.perfmodel import PerfModel
from repro.profiling import SimulatedProfiler
from repro.runtime import Executor


@pytest.fixture(scope="module")
def graph():
    return make_tiny_gpt()


@pytest.fixture(scope="module")
def cluster42():
    return ClusterSpec(num_nodes=4, gpus_per_node=2)


def quick_policy(**overrides):
    kwargs = dict(replan_iterations=2, measure=False)
    kwargs.update(overrides)
    return ControllerPolicy(**kwargs)


# ======================================================================
# churn timelines
# ======================================================================
class TestChurnTimeline:
    def test_event_payload_validation(self):
        with pytest.raises(ValueError, match="node_id"):
            ChurnEvent(1.0, "node_preempt")
        with pytest.raises(ValueError, match="factor"):
            ChurnEvent(1.0, "straggler_on", device_id=0, factor=0.5)
        with pytest.raises(ValueError, match="scope"):
            ChurnEvent(1.0, "link_degrade", factor=0.5)
        with pytest.raises(ValueError, match="factor in"):
            ChurnEvent(1.0, "link_degrade", scope="intra", factor=1.5)
        with pytest.raises(ValueError, match="kind"):
            ChurnEvent(1.0, "meteor_strike")
        with pytest.raises(ValueError, match="non-negative"):
            ChurnEvent(-1.0, "node_join", node_id=0)

    def test_dict_round_trip_drops_none_fields(self):
        event = ChurnEvent(2.5, "straggler_on", device_id=3, factor=1.7)
        data = event.to_dict()
        assert set(data) == {"time", "kind", "device_id", "factor"}
        assert ChurnEvent.from_dict(data) == event

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown churn event"):
            ChurnEvent.from_dict(
                {"time": 1.0, "kind": "node_join", "node_id": 0,
                 "blast_radius": 3}
            )

    def test_timeline_must_be_time_ordered(self):
        events = (
            ChurnEvent(5.0, "node_preempt", node_id=0),
            ChurnEvent(1.0, "node_join", node_id=0),
        )
        with pytest.raises(ValueError, match="time-ordered"):
            ChurnTimeline(seed=0, events=events)

    def test_file_round_trip(self, tmp_path):
        timeline = random_churn_timeline(4, 2, seed=9, num_events=7)
        path = tmp_path / "t.churn.json"
        timeline.save(path)
        assert ChurnTimeline.load(path) == timeline

    def test_version_gate(self):
        data = {"format_version": 99, "seed": 0, "events": []}
        with pytest.raises(ValueError, match="format version"):
            ChurnTimeline.from_dict(data)

    def test_random_timeline_is_deterministic(self):
        a = random_churn_timeline(4, 2, seed=5, num_events=12)
        b = random_churn_timeline(4, 2, seed=5, num_events=12)
        c = random_churn_timeline(4, 2, seed=6, num_events=12)
        assert a == b
        assert a != c

    def test_random_timeline_state_consistency(self):
        for seed in range(8):
            timeline = random_churn_timeline(
                3, 2, seed=seed, num_events=20
            )
            preempted, stragglers, degraded = set(), set(), set()
            for event in timeline.events:
                if event.kind == "node_preempt":
                    assert event.node_id not in preempted
                    preempted.add(event.node_id)
                    assert len(preempted) < 3  # one node stays up
                elif event.kind == "node_join":
                    assert event.node_id in preempted
                    preempted.discard(event.node_id)
                elif event.kind == "straggler_on":
                    assert event.device_id not in stragglers
                    stragglers.add(event.device_id)
                elif event.kind == "straggler_off":
                    assert event.device_id in stragglers
                    stragglers.discard(event.device_id)
                elif event.kind == "link_degrade":
                    assert event.scope not in degraded
                    degraded.add(event.scope)
                else:
                    assert event.scope in degraded
                    degraded.discard(event.scope)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    num_events=st.integers(min_value=0, max_value=15),
    nodes=st.integers(min_value=1, max_value=5),
)
def test_random_churn_timeline_round_trips(seed, num_events, nodes):
    timeline = random_churn_timeline(
        nodes, 2, seed=seed, num_events=num_events
    )
    rebuilt = ChurnTimeline.from_dict(
        json.loads(json.dumps(timeline.to_dict()))
    )
    assert rebuilt == timeline
    assert rebuilt.to_dict()["format_version"] == CHURN_FORMAT_VERSION


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    failures=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.floats(min_value=0, max_value=60, allow_nan=False),
        ),
        max_size=3,
    ),
    stragglers=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.floats(min_value=1.0, max_value=8.0, allow_nan=False),
        ),
        max_size=3,
        unique_by=lambda pair: pair[0],
    ),
    intra=st.one_of(
        st.none(),
        st.floats(min_value=0.1, max_value=1.0, allow_nan=False),
    ),
)
def test_fault_plan_json_round_trips(seed, failures, stragglers, intra):
    links = (
        (LinkDegradation("intra", intra),) if intra is not None else ()
    )
    plan = FaultPlan(
        seed=seed,
        device_failures=tuple(
            DeviceFailure(device_id=d, time=t) for d, t in failures
        ),
        stragglers=tuple(
            StragglerSlowdown(device_id=d, factor=f)
            for d, f in stragglers
        ),
        link_degradations=links,
    )
    rebuilt = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
    assert rebuilt == plan


# ======================================================================
# heterogeneous clusters
# ======================================================================
class TestHeterogeneousCluster:
    def test_mixed_cluster_shape_and_describe(self):
        cluster = mixed_cluster(
            [v100(), v100(), a100(), a100()], gpus_per_node=2
        )
        assert cluster.is_heterogeneous
        assert cluster.num_gpus == 8
        assert "V100" in cluster.describe()
        assert "A100" in cluster.describe()

    def test_homogeneous_node_devices_is_not_heterogeneous(self):
        device = v100()
        cluster = mixed_cluster([device, device], gpus_per_node=2)
        assert not cluster.is_heterogeneous

    def test_node_devices_length_is_validated(self):
        with pytest.raises(ValueError):
            ClusterSpec(
                num_nodes=2, gpus_per_node=2, node_devices=(v100(),)
            )

    def test_span_compute_scale_prices_the_slowest_node(self):
        slow = v100()
        fast = a100()
        cluster = mixed_cluster(
            [slow, fast], gpus_per_node=2, reference=slow
        )
        # A span entirely on the fast node runs faster than reference.
        assert cluster.span_compute_scale(2, 2, "fp16") < 1.0
        # The reference node costs exactly reference time.
        assert cluster.span_compute_scale(0, 2, "fp16") == 1.0
        # A span covering both nodes is paced by the slower one.
        assert cluster.span_compute_scale(0, 4, "fp16") == 1.0

    def test_span_memory_limit_takes_the_min(self):
        small = DeviceSpec(name="small", memory_bytes=8 * 2**30)
        big = a100()
        cluster = mixed_cluster(
            [small, big], gpus_per_node=2, reference=big
        )
        assert cluster.span_memory_limit(0, 4) == 8 * 2**30
        assert cluster.span_memory_limit(2, 2) == big.memory_bytes

    def test_perfmodel_hetero_scales_costs(self, graph):
        homo = ClusterSpec(num_nodes=2, gpus_per_node=2)
        slowed = DeviceSpec(name="slow-V100", efficiency=0.55 / 2)
        hetero = ClusterSpec(
            num_nodes=2,
            gpus_per_node=2,
            node_devices=(v100(), slowed),
        )
        database = SimulatedProfiler(homo, seed=0).profile(graph)
        config = balanced_config(graph, homo, 2)
        base = PerfModel(graph, homo, database).estimate(config)
        het = PerfModel(graph, hetero, database).estimate(config)
        # Stage 0 sits on the reference node: identical cost.  Stage 1
        # sits on the half-speed node: compute costs double.
        assert het.stages[0].fwd_time_mb == pytest.approx(
            base.stages[0].fwd_time_mb
        )
        assert het.stages[1].fwd_time_mb == pytest.approx(
            2 * base.stages[1].fwd_time_mb
        )
        # Memory columns are capacity-bound, not speed-bound.
        assert het.stages[1].peak_memory == pytest.approx(
            base.stages[1].peak_memory
        )
        assert het.stage_limits is not None

    def test_perfmodel_hetero_batch_matches_scalar(self, graph):
        hetero = ClusterSpec(
            num_nodes=2, gpus_per_node=2, node_devices=(v100(), a100())
        )
        database = SimulatedProfiler(hetero, seed=0).profile(graph)
        configs = [
            balanced_config(graph, hetero, stages) for stages in (1, 2, 4)
        ]
        scalar_model = PerfModel(graph, hetero, database)
        batch_model = PerfModel(graph, hetero, database)
        scalar = [scalar_model.estimate(c) for c in configs]
        batch = batch_model.estimate_batch(configs)
        for left, right in zip(scalar, batch):
            assert left.iteration_time == pytest.approx(
                right.iteration_time
            )
            assert left.is_oom == right.is_oom
            assert left.stage_limits == right.stage_limits

    def test_hetero_oom_uses_per_stage_limits(self, graph):
        tiny = DeviceSpec(name="tiny", memory_bytes=4 * 2**20)
        hetero = ClusterSpec(
            num_nodes=2,
            gpus_per_node=2,
            node_devices=(v100(), tiny),
        )
        database = SimulatedProfiler(hetero, seed=0).profile(graph)
        config = balanced_config(graph, hetero, 2)
        report = PerfModel(graph, hetero, database).estimate(config)
        assert report.is_oom
        assert report.oom_stages == [1]

    def test_executor_prices_hetero_placement(self, graph):
        homo = ClusterSpec(num_nodes=2, gpus_per_node=2)
        slowed = DeviceSpec(name="slow-V100", efficiency=0.55 / 2)
        hetero = ClusterSpec(
            num_nodes=2, gpus_per_node=2, node_devices=(v100(), slowed)
        )
        config = balanced_config(graph, homo, 2)
        fast = Executor(graph, homo, seed=0, noise=0.0).run(config)
        slow = Executor(graph, hetero, seed=0, noise=0.0).run(config)
        assert slow.iteration_time > fast.iteration_time
        assert not slow.oom

    def test_mixed_cluster_survives_search_and_adaptation(self, graph):
        hetero = mixed_cluster([v100(), a100()], gpus_per_node=2)
        config = balanced_config(graph, hetero, 2)
        shrunk = shrink_cluster(hetero, [2, 3])
        assert shrunk.num_gpus == 2
        adapted = adapt_config(config, graph, shrunk)
        assert adapted is not None
        assert adapted.total_devices == 2


# ======================================================================
# shrink diagnostics & stacked faults
# ======================================================================
class TestShrinkDiagnostics:
    def test_power_of_two_snap_surfaces_ace220(self):
        cluster = ClusterSpec(num_nodes=1, gpus_per_node=8)
        shrunk, diagnostics = shrink_cluster_checked(cluster, [0, 1, 2])
        assert shrunk.num_gpus == 4  # 5 survive, snap to 4
        codes = [d.code for d in diagnostics]
        assert codes == ["ACE220"]
        assert diagnostics[0].severity == "warning"
        assert diagnostics[0].attrs == {
            "survivors": 5, "snapped": 4, "dropped": 1,
        }

    def test_exact_power_of_two_is_clean(self):
        cluster = ClusterSpec(num_nodes=1, gpus_per_node=8)
        shrunk, diagnostics = shrink_cluster_checked(cluster, [0, 1, 2, 3])
        assert shrunk.num_gpus == 4
        assert diagnostics == []

    def test_all_devices_failed_raises_ace221(self):
        cluster = ClusterSpec(num_nodes=1, gpus_per_node=4)
        with pytest.raises(NoSurvivorsError) as excinfo:
            shrink_cluster_checked(cluster, range(4))
        assert excinfo.value.diagnostic.code == "ACE221"
        with pytest.raises(NoSurvivorsError):
            shrink_cluster(cluster, range(4))

    def test_hetero_shrink_keeps_healthiest_nodes(self):
        cluster = mixed_cluster(
            [v100(), a100(), a100(), v100()], gpus_per_node=2
        )
        # Node 1 loses both devices, node 0 loses one: the two fully
        # healthy nodes (2: A100, 3: V100) survive.
        shrunk, _ = shrink_cluster_checked(cluster, [0, 2, 3])
        assert shrunk.num_nodes == 2
        assert [d.name for d in shrunk.node_devices] == [
            a100().name, v100().name,
        ]


class TestStackedFaults:
    def stacked_plan(self):
        return FaultPlan(
            seed=3,
            device_failures=(DeviceFailure(device_id=5, time=0.001),),
            stragglers=(StragglerSlowdown(device_id=1, factor=2.5),),
            link_degradations=(
                LinkDegradation("intra", 0.5),
                LinkDegradation("inter", 0.4),
            ),
        )

    def test_executor_runs_all_faults_at_once(self, graph, cluster42):
        plan = self.stacked_plan()
        config = balanced_config(graph, cluster42, 2)
        clean = Executor(graph, cluster42, seed=0, noise=0.0).run(config)
        hit = Executor(graph, cluster42, seed=0, noise=0.0).run(
            config, plan
        )
        assert hit.degraded
        assert not hit.completed  # the failure halts the iteration
        assert hit.failed_device == 5
        assert hit.throughput(graph.global_batch_size) == 0.0
        assert clean.completed

    def test_degrade_then_shrink_then_adapt(self, graph, cluster42):
        plan = self.stacked_plan()
        degraded = degrade_cluster(cluster42, plan)
        assert degraded.intra_node.bandwidth == pytest.approx(
            cluster42.intra_node.bandwidth * 0.5
        )
        assert degraded.inter_node.bandwidth == pytest.approx(
            cluster42.inter_node.bandwidth * 0.4
        )
        shrunk = shrink_cluster(degraded, plan.failed_devices())
        assert shrunk.num_gpus == 4
        # The degraded links carry over to the surviving cluster.
        assert shrunk.intra_node.bandwidth == degraded.intra_node.bandwidth
        config = balanced_config(graph, cluster42, 2)
        adapted = adapt_config(config, graph, shrunk)
        assert adapted is not None
        assert adapted.total_devices == 4
        assert adapted.num_stages == config.num_stages
        result = Executor(graph, shrunk, seed=0, noise=0.0).run(adapted)
        assert result.completed and not result.oom

    def test_stacked_plan_round_trips(self, tmp_path):
        plan = self.stacked_plan()
        path = tmp_path / "stacked.fault.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan


# ======================================================================
# the elastic controller
# ======================================================================
class TestElasticController:
    def test_replay_equivalence(self, graph, cluster42):
        timeline = random_churn_timeline(4, 2, seed=7, num_events=8)
        policy = ControllerPolicy(replan_iterations=3)
        first = ElasticController(
            graph, cluster42, seed=3, policy=policy
        ).run(timeline)
        second = ElasticController(
            graph, cluster42, seed=3, policy=policy
        ).run(timeline)
        assert first.replay_digest() == second.replay_digest()
        assert first.to_dict()["decisions"] == [
            d.to_dict() for d in first.decisions
        ]
        # The record is JSON-clean end to end.
        json.dumps(first.to_dict())

    def test_forced_replan_on_preemption(self, graph, cluster42):
        timeline = ChurnTimeline(seed=0, events=(
            ChurnEvent(5.0, "node_preempt", node_id=3),
        ))
        run = ElasticController(
            graph, cluster42, seed=0, policy=quick_policy()
        ).run(timeline)
        (decision,) = run.decisions
        assert decision.action == "replan"
        assert decision.reason == "shape_mismatch"
        assert decision.cluster_gpus == 4
        assert run.final_feasible
        assert run.final_config.total_devices == 4

    def test_hysteresis_cooldown_blocks_back_to_back_replans(
        self, graph, cluster42
    ):
        timeline = ChurnTimeline(seed=0, events=(
            ChurnEvent(5.0, "straggler_on", device_id=0, factor=4.0),
            ChurnEvent(8.0, "straggler_on", device_id=2, factor=4.0),
        ))
        policy = quick_policy(
            loss_threshold=0.05,
            cooldown_seconds=30.0,
            debounce_seconds=1.0,
        )
        run = ElasticController(
            graph, cluster42, seed=0, policy=policy
        ).run(timeline)
        assert [d.action for d in run.decisions][0] == "replan"
        assert run.decisions[0].reason == "loss_threshold"
        second = run.decisions[1]
        assert second.action == "keep"
        assert second.reason in ("cooldown", "below_threshold")

    def test_debounce_coalesces_bursts(self, graph, cluster42):
        timeline = ChurnTimeline(seed=0, events=(
            ChurnEvent(5.0, "node_preempt", node_id=0),
            ChurnEvent(5.2, "node_preempt", node_id=1),
            ChurnEvent(5.4, "straggler_on", device_id=6, factor=2.0),
        ))
        run = ElasticController(
            graph, cluster42, seed=0, policy=quick_policy()
        ).run(timeline)
        assert len(run.decisions) == 1
        assert len(run.decisions[0].events) == 3

    def test_small_losses_are_kept(self, graph, cluster42):
        timeline = ChurnTimeline(seed=0, events=(
            ChurnEvent(5.0, "link_degrade", scope="inter", factor=0.9),
        ))
        run = ElasticController(
            graph, cluster42, seed=0,
            policy=quick_policy(loss_threshold=0.5),
        ).run(timeline)
        (decision,) = run.decisions
        assert decision.action == "keep"
        assert decision.reason == "below_threshold"

    def test_all_nodes_preempted_halts_then_recovers(
        self, graph, cluster42
    ):
        events = tuple(
            ChurnEvent(float(i + 1) * 5, "node_preempt", node_id=i)
            for i in range(4)
        ) + (ChurnEvent(30.0, "node_join", node_id=0),)
        run = ElasticController(
            graph, cluster42, seed=0, policy=quick_policy()
        ).run(ChurnTimeline(seed=0, events=events))
        actions = [d.action for d in run.decisions]
        assert "halt" in actions
        assert actions[-1] == "replan"  # the join resumes service
        assert run.decisions[-1].reason == "resume"
        assert run.final_feasible

    def test_events_about_unknown_hardware_are_inert(self, graph):
        single = ClusterSpec(num_nodes=1, gpus_per_node=4)
        timeline = ChurnTimeline(seed=0, events=(
            ChurnEvent(1.0, "node_preempt", node_id=7),
            ChurnEvent(2.0, "straggler_on", device_id=99, factor=2.0),
        ))
        run = ElasticController(
            graph, single, seed=0, policy=quick_policy()
        ).run(timeline)
        assert all(d.action == "keep" for d in run.decisions)
        assert run.final_feasible

    def test_never_crashes_on_random_timelines(self, graph, cluster42):
        for seed in range(4):
            timeline = random_churn_timeline(
                4, 2, seed=seed, num_events=10
            )
            run = ElasticController(
                graph, cluster42, seed=seed, policy=quick_policy()
            ).run(timeline)
            assert len(run.decisions) >= 1
            for decision in run.decisions:
                assert decision.plan_signature

    def test_straggler_folds_into_planner_view(self, graph, cluster42):
        from repro.elastic.controller import _MembershipState

        controller = ElasticController(
            graph, cluster42, seed=0, policy=quick_policy()
        )
        state = _MembershipState()
        state.apply(ChurnEvent(1.0, "straggler_on", device_id=2, factor=2.0))
        state.apply(
            ChurnEvent(2.0, "link_degrade", scope="intra", factor=0.5)
        )
        view = controller._project(state)
        # Planner view: node 1 is half-speed, links degraded.
        assert view.planner.is_heterogeneous
        assert view.planner.node_devices[1].efficiency == pytest.approx(
            view.planner.node_devices[0].efficiency / 2
        )
        assert view.planner.intra_node.bandwidth == pytest.approx(
            cluster42.intra_node.bandwidth * 0.5
        )
        # Executor view: nominal links, faults carried separately.
        assert view.effective.intra_node.bandwidth == pytest.approx(
            cluster42.intra_node.bandwidth
        )
        assert view.fault_view.stragglers[0].device_id == 2
        assert view.fault_view.link_degradations[0].scope == "intra"

    def test_emits_elastic_telemetry(self, graph, cluster42):
        from repro.telemetry import CallbackSink, TelemetryBus, using_bus

        events = []
        bus = TelemetryBus()
        bus.add_sink(CallbackSink(events.append))
        timeline = ChurnTimeline(seed=0, events=(
            ChurnEvent(5.0, "node_preempt", node_id=3),
        ))
        with using_bus(bus):
            ElasticController(
                graph, cluster42, seed=0, policy=quick_policy()
            ).run(timeline)
        names = {event.name for event in events}
        assert {
            "elastic.run.begin", "elastic.run.end", "elastic.event",
            "elastic.decision", "elastic.replan.begin",
            "elastic.replan.end", "elastic.cluster.shrunk",
        } <= names
        from repro.telemetry.events import is_registered

        assert all(
            is_registered(event.name)
            for event in events
            if event.name.startswith("elastic.")
        )


# ======================================================================
# churn timeline lint
# ======================================================================
class TestChurnLint:
    def test_clean_timeline_lints_clean(self, tmp_path):
        path = tmp_path / "ok.churn.json"
        random_churn_timeline(4, 2, seed=1, num_events=6).save(path)
        from repro.lint import lint_artifact_path

        assert lint_artifact_path(path) == []

    def test_broken_timelines_get_typed_codes(self, tmp_path):
        from repro.lint import lint_artifact_path

        path = tmp_path / "bad.churn.json"
        path.write_text(json.dumps({
            "format_version": 9,
            "seed": 0,
            "events": [
                {"time": 2.0, "kind": "node_join", "node_id": 0},
                {"time": 1.0, "kind": "warp_core_breach"},
            ],
        }))
        codes = sorted(d.code for d in lint_artifact_path(path))
        assert codes == ["ACE351", "ACE353"]

        path.write_text(json.dumps({
            "format_version": 1,
            "seed": 0,
            "events": [
                {"time": 2.0, "kind": "node_join", "node_id": 0},
                {"time": 1.0, "kind": "node_join", "node_id": 1},
            ],
        }))
        assert [d.code for d in lint_artifact_path(path)] == ["ACE352"]

    def test_unreadable_timeline_is_ace350(self, tmp_path):
        from repro.lint import lint_churn_timeline_file

        path = tmp_path / "garbage.churn.json"
        path.write_text("{not json")
        assert [d.code for d in lint_churn_timeline_file(path)] == [
            "ACE350"
        ]

    def test_total_preemption_warns_ace354(self, tmp_path):
        from repro.lint import lint_artifact_path

        path = tmp_path / "dark.churn.json"
        path.write_text(json.dumps({
            "format_version": 1,
            "seed": 0,
            "events": [
                {"time": 1.0, "kind": "node_preempt", "node_id": 0},
                {"time": 2.0, "kind": "node_preempt", "node_id": 1},
            ],
        }))
        diagnostics = lint_artifact_path(path)
        assert [d.code for d in diagnostics] == ["ACE354"]
        assert diagnostics[0].severity == "warning"

    def test_shape_dispatch_without_suffix(self, tmp_path):
        from repro.lint import lint_artifact_path

        path = tmp_path / "anything.json"
        random_churn_timeline(2, 2, seed=0, num_events=3).save(path)
        assert lint_artifact_path(path) == []


# ======================================================================
# churn-aware serving
# ======================================================================
class TestChurnServing:
    @pytest.fixture()
    def server(self, tmp_path):
        from repro.service import PlannerDaemon, serve
        from test_service import quick_planner

        daemon = PlannerDaemon(
            planner=quick_planner, workers=2, queue_limit=8,
            state_dir=tmp_path,
        ).start()
        http_server = serve(daemon, host="127.0.0.1", port=0)
        thread = threading.Thread(
            target=http_server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        yield http_server, daemon
        http_server.shutdown()
        daemon.drain(timeout=5)
        http_server.server_close()

    def post(self, server, path, payload):
        port = server.server_address[1]
        # One retry on transient connection errors: the assertion is
        # "the daemon never drops a request", not "the kernel never
        # resets a socket under a burst".
        for attempt in (0, 1):
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}{path}",
                data=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=30
                ) as reply:
                    return reply.status, json.loads(reply.read())
            except urllib.error.HTTPError as error:
                return error.code, json.loads(error.read())
            except (urllib.error.URLError, ConnectionError, OSError):
                if attempt:
                    raise
                time.sleep(0.2)

    def test_churn_endpoint_invalidates_cache(self, server):
        http_server, daemon = server
        request = {"model": "m", "gpus": 4}
        self.post(http_server, "/plan", request)
        assert len(daemon.cache) == 1
        code, body = self.post(
            http_server, "/churn",
            {"time": 1.0, "kind": "node_preempt", "node_id": 0},
        )
        assert code == 200
        assert body == {"kind": "node_preempt", "dropped": 1}
        assert len(daemon.cache) == 0

    def test_invalid_churn_event_is_a_client_error(self, server):
        http_server, _ = server
        code, body = self.post(
            http_server, "/churn", {"time": 1.0, "kind": "nope"}
        )
        assert code == 400
        assert "error" in body

    def test_requests_survive_concurrent_churn(self, server):
        """The chaos assertion: every /plan in flight during a churn
        storm gets a terminal answer — degraded allowed, drops not."""
        http_server, daemon = server
        timeline = random_churn_timeline(4, 2, seed=2, num_events=6)
        results = [None] * 6

        def client(index):
            results[index] = self.post(
                http_server, "/plan",
                {"model": "m", "gpus": 4 * (1 + index % 2)},
            )

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(len(results))
        ]
        for thread in threads[:3]:
            thread.start()
        for event in timeline.events:
            self.post(http_server, "/churn", event.to_dict())
        for thread in threads[3:]:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)

        assert all(result is not None for result in results)
        for code, body in results:
            assert code == 200
            assert body.get("status") in ("served", "partial")
            assert body.get("plan")

    def test_apply_churn_accepts_event_objects(self):
        from repro.service import PlannerDaemon

        daemon = PlannerDaemon(workers=1)
        try:
            result = daemon.apply_churn(
                ChurnEvent(1.0, "link_degrade", scope="intra", factor=0.5)
            )
            assert result == {"kind": "link_degrade", "dropped": 0}
        finally:
            daemon.drain(timeout=5)


# ======================================================================
# CLI
# ======================================================================
class TestElasticCLI:
    def test_gen_and_run_round_trip(self, tmp_path, capsys):
        from repro.cli import elastic_main

        path = tmp_path / "cli.churn.json"
        assert elastic_main([
            "gen", "--seed", "4", "--nodes", "4",
            "--gpus-per-node", "2", "--events", "4",
            "--output", str(path),
        ]) == 0
        assert ChurnTimeline.load(path).seed == 4

        out_path = tmp_path / "run.json"
        assert elastic_main([
            "run", "--model", "gpt-2l", "--seed", "4",
            "--nodes", "4", "--gpus-per-node", "2",
            "--timeline", str(path), "--iterations", "2",
            "--output", str(out_path), "--quiet", "--json",
        ]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["seed"] == 4
        assert payload["decisions"]
        assert payload["final_feasible"] is True

    def test_replan_churn_replay_mode(self, tmp_path, capsys):
        from repro.cli import replan_main

        path = tmp_path / "replay.churn.json"
        random_churn_timeline(2, 2, seed=1, num_events=3).save(path)
        assert replan_main([
            "--model", "gpt-2l", "--gpus", "4", "--iterations", "2",
            "--churn-timeline", str(path), "--quiet", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["decisions"]

    def test_replan_rejects_missing_timeline(self, tmp_path):
        from repro.cli import replan_main

        assert replan_main([
            "--model", "gpt-2l", "--gpus", "4",
            "--churn-timeline", str(tmp_path / "nope.churn.json"),
            "--quiet",
        ]) == 2
