"""Final property batch: op-movement conservation and report algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import move_ops
from repro.parallel import balanced_config, validate_config
from repro.perfmodel.timing import stage_totals

from conftest import make_tiny_gpt

_GRAPH = make_tiny_gpt()


class TestMoveOpsProperties:
    @given(
        src=st.integers(0, 3),
        dst=st.integers(0, 3),
        count=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_conservation_and_validity(self, src, dst, count):
        """Op movement conserves coverage, device counts, and validity
        (or cleanly refuses)."""
        from repro.cluster import paper_cluster

        cluster = paper_cluster(4)
        config = balanced_config(_GRAPH, cluster, 4)
        moved = move_ops(config, _GRAPH, src, dst, count)
        if src == dst:
            assert moved is None
            return
        if moved is None:
            # Refusal must be because a stage would drain.
            assert count >= min(
                s.num_ops for s in config.stages
            )
            return
        validate_config(moved, _GRAPH, cluster)
        assert moved.num_ops == config.num_ops
        assert [s.num_devices for s in moved.stages] == [
            s.num_devices for s in config.stages
        ]
        assert moved.stages[src].num_ops == config.stages[src].num_ops - count
        assert moved.stages[dst].num_ops == config.stages[dst].num_ops + count

    @given(
        src=st.integers(0, 3),
        dst=st.integers(0, 3),
        count=st.integers(1, 3),
    )
    @settings(max_examples=20, deadline=None)
    def test_signature_changes_on_real_moves(self, src, dst, count):
        from repro.cluster import paper_cluster

        cluster = paper_cluster(4)
        config = balanced_config(_GRAPH, cluster, 4)
        moved = move_ops(config, _GRAPH, src, dst, count)
        if moved is not None:
            assert moved.signature() != config.signature()


class TestTimingAlgebra:
    @given(
        fwd=st.lists(st.floats(0.01, 5.0), min_size=1, max_size=6),
        bwd=st.lists(st.floats(0.01, 5.0), min_size=1, max_size=6),
        n=st.integers(1, 64),
    )
    @settings(max_examples=50, deadline=None)
    def test_totals_monotone_in_microbatches(self, fwd, bwd, n):
        size = min(len(fwd), len(bwd))
        fwd, bwd = fwd[:size], bwd[:size]
        t_n = stage_totals(fwd, bwd, n)
        t_n1 = stage_totals(fwd, bwd, n + 1)
        assert np.all(t_n1 >= t_n)

    @given(
        fwd=st.lists(st.floats(0.01, 5.0), min_size=2, max_size=6),
        n=st.integers(1, 32),
    )
    @settings(max_examples=30, deadline=None)
    def test_later_stages_pay_warmup(self, fwd, n):
        """With equal steady-state loads, the per-stage totals grow
        with position (earlier stages' warmup accumulates)."""
        size = len(fwd)
        uniform = [1.0] * size
        totals = stage_totals(uniform, uniform, n)
        assert np.all(np.diff(totals) >= 0)


class TestReportAlgebra:
    def test_stage_time_decomposition(self, tiny_perf_model, tiny_config):
        report = tiny_perf_model.estimate(tiny_config)
        n = report.num_microbatches
        for stage in report.stages:
            assert stage.stage_time(n) == pytest.approx(
                stage.compute_time(n) + stage.comm_time(n)
            )
            assert stage.compute_time_mb == pytest.approx(
                stage.fwd_time_mb
                + stage.bwd_time_mb
                + stage.recompute_time_mb
            )

    def test_iteration_at_least_bottleneck_steady(
        self, tiny_perf_model, tiny_config
    ):
        report = tiny_perf_model.estimate(tiny_config)
        n = report.num_microbatches
        steady = max(
            (s.compute_time_mb + s.comm_time_mb) * n for s in report.stages
        )
        assert report.iteration_time >= steady * 0.999
