"""Deeper tests of the baseline solvers' internals."""

import numpy as np
import pytest

from repro.baselines.alpa import AlpaOptions, _group_layers, _StageCoster
from repro.baselines.dp_solver import DPSolverOptions, _units, dp_solve
from repro.baselines.megatron import MegatronPlan, plan_to_config
from repro.parallel import validate_config

from conftest import make_tiny_gpt


class TestAlpaLayerGrouping:
    def test_groups_tile_the_graph(self, tiny_graph):
        for count in (1, 2, 4, 100):
            groups = _group_layers(tiny_graph, count)
            assert groups[0][0] == 0
            assert groups[-1][1] == tiny_graph.num_ops
            for (a, b), (c, d) in zip(groups, groups[1:]):
                assert b == c
                assert b > a

    def test_group_count_capped_by_layers(self, tiny_graph):
        groups = _group_layers(tiny_graph, 100)
        assert len(groups) <= tiny_graph.num_layers

    def test_first_and_last_absorb_edges(self, tiny_graph):
        """Embedding/head/loss ops land in the edge groups."""
        groups = _group_layers(tiny_graph, 4)
        assert groups[0][0] == 0  # embedding included
        assert groups[-1][1] == tiny_graph.num_ops  # loss included


class TestAlpaIntraOpChooser:
    @pytest.fixture()
    def coster(self, tiny_graph, tiny_perf_model):
        groups = _group_layers(tiny_graph, 4)
        return _StageCoster(
            tiny_graph, tiny_perf_model, groups,
            microbatch=8, recompute=False, max_tp=8,
        )

    def test_prefers_dp_when_tp_traffic_dominates(self, coster):
        """Paper §5.4: Alpa prioritizes data parallelism — per-iteration
        tp collectives dwarf the one-shot gradient sync."""
        tp = coster.choose_tp(0, 4, devices=4)
        assert tp == 1

    def test_stage_time_monotone_in_span(self, coster):
        short = coster.stage_time(0, 1, 2, 1)
        long = coster.stage_time(0, 4, 2, 1)
        assert long > short

    def test_memory_filter_rejects_oversize(self, tiny_graph,
                                            tiny_perf_model):
        groups = _group_layers(tiny_graph, 4)
        coster = _StageCoster(
            tiny_graph, tiny_perf_model, groups,
            microbatch=8, recompute=False, max_tp=8,
        )
        coster.memory_limit = 1.0  # nothing fits
        assert coster.stage_time(0, 4, 2, 1) == float("inf")

    def test_recompute_reduces_memory_needs(self, tiny_graph,
                                            tiny_perf_model):
        groups = _group_layers(tiny_graph, 4)
        plain = _StageCoster(
            tiny_graph, tiny_perf_model, groups, 8, False, 8
        )
        recomputed = _StageCoster(
            tiny_graph, tiny_perf_model, groups, 8, True, 8
        )
        # With recompute the same stage costs more time...
        assert recomputed.stage_time(0, 4, 2, 1) > plain.stage_time(
            0, 4, 2, 1
        )


class TestDPSolverInternals:
    def test_units_tile_in_both_modes(self, tiny_graph):
        for unit in ("op", "layer"):
            units = _units(tiny_graph, unit)
            assert units[0][0] == 0
            assert units[-1][1] == tiny_graph.num_ops
            for (a, b), (c, d) in zip(units, units[1:]):
                assert b == c

    def test_layer_units_fewer_than_op_units(self, tiny_graph):
        assert len(_units(tiny_graph, "layer")) < len(
            _units(tiny_graph, "op")
        )

    def test_op_unit_dp_beats_constructible_plan(
        self, tiny_graph, small_cluster, tiny_perf_model
    ):
        """At op granularity the DP's space contains the naive balanced
        split, so its answer can't be (much) worse than it.

        The tolerance covers objective-mismatch: the DP balances
        per-microbatch stage latency while the true objective adds
        comm/bubble terms it approximates.
        """
        from repro.parallel import balanced_config

        result = dp_solve(
            tiny_graph, small_cluster, tiny_perf_model,
            options=DPSolverOptions(
                microbatch_sizes=[4], max_stages=4, unit="op"
            ),
        )
        naive = balanced_config(tiny_graph, small_cluster, 4,
                                microbatch_size=4)
        assert result.best_objective <= tiny_perf_model.objective(naive) * 1.05

    def test_respects_max_stages(self, tiny_graph, small_cluster,
                                 tiny_perf_model):
        result = dp_solve(
            tiny_graph, small_cluster, tiny_perf_model,
            options=DPSolverOptions(
                microbatch_sizes=[4], max_stages=2, unit="layer"
            ),
        )
        assert result.best_config.num_stages <= 2


class TestMegatronPlanEdges:
    def test_pp_exceeding_ops_rejected(self, small_cluster):
        graph = make_tiny_gpt(num_layers=4)
        plan = MegatronPlan(tp=1, dp=1, pp=4, microbatch_per_gpu=4,
                            recompute=False)
        config = plan_to_config(plan, graph, small_cluster)
        assert config is not None
        validate_config(config, graph, small_cluster)

    def test_indivisible_batch_rejected(self, tiny_graph, small_cluster):
        # dp=4 with per-gpu microbatch 3 -> aggregated 12, but batch 32
        # isn't divisible by 12: plan_to_config returns None (invalid).
        plan = MegatronPlan(tp=1, dp=4, pp=1, microbatch_per_gpu=3,
                            recompute=False)
        assert plan_to_config(plan, tiny_graph, small_cluster) is None
