"""Tests for the Table 1 primitive definitions."""

import pytest

from repro.core import (
    PRIMITIVE_TABLE,
    Trend,
    eligible_primitives,
    get_primitive,
)


class TestTable:
    def test_ten_rows(self):
        assert len(PRIMITIVE_TABLE) == 10
        assert [p.primitive_id for p in PRIMITIVE_TABLE] == list(range(1, 11))

    def test_pairs(self):
        names = {p.name for p in PRIMITIVE_TABLE}
        for base in ("op#", "mbs", "dp", "tp", "rc"):
            assert f"inc-{base}" in names
            assert f"dec-{base}" in names

    def test_inc_dec_opposite_trends(self):
        """Every inc/dec pair has mirrored non-flat trends."""
        for base in ("op#", "mbs", "dp", "tp", "rc"):
            inc = get_primitive(f"inc-{base}")
            dec = get_primitive(f"dec-{base}")
            for resource in ("compute", "communication", "memory"):
                a, b = inc.trend_for(resource), dec.trend_for(resource)
                if a is Trend.FLAT:
                    assert b is Trend.FLAT
                else:
                    assert {a, b} == {Trend.UP, Trend.DOWN}

    def test_no_free_lunch(self):
        """No primitive decreases everything (§3.2.1)."""
        for spec in PRIMITIVE_TABLE:
            trends = [
                spec.trend_for(r)
                for r in ("compute", "communication", "memory")
            ]
            assert trends.count(Trend.DOWN) < 3

    def test_partner_primitives(self):
        assert get_primitive("inc-op#").partner == "dec-op#"
        assert get_primitive("inc-dp").partner == "dec-dp/tp"
        assert get_primitive("inc-tp").partner == "dec-dp/tp"
        assert get_primitive("inc-rc").partner is None
        assert get_primitive("inc-mbs").partner is None


class TestEligibility:
    def test_memory_relievers(self):
        names = [p.name for p in eligible_primitives("memory")]
        assert names == ["dec-op#", "dec-mbs", "inc-dp", "inc-tp", "inc-rc"]

    def test_compute_relievers(self):
        names = [p.name for p in eligible_primitives("compute")]
        assert "dec-op#" in names
        assert "inc-mbs" in names
        assert "dec-rc" in names
        assert "inc-dp" in names and "inc-tp" in names

    def test_communication_relievers(self):
        names = [p.name for p in eligible_primitives("communication")]
        assert names == ["dec-dp", "dec-tp"]

    def test_unknown_resource_raises(self):
        with pytest.raises(KeyError):
            PRIMITIVE_TABLE[0].trend_for("power")

    def test_get_primitive_unknown(self):
        with pytest.raises(KeyError):
            get_primitive("inc-zz")
