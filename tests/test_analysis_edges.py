"""Failure-path tests for the comparison harness."""

import pytest

from repro.analysis import compare_systems, evaluate_config
from repro.cluster import paper_cluster
from repro.perfmodel import PerfModel
from repro.profiling import SimulatedProfiler
from repro.runtime import Executor

from conftest import make_tiny_gpt


class TestEvaluateConfigFailure:
    def test_none_config_marks_failed(self, tiny_graph, small_cluster,
                                      tiny_perf_model, tiny_executor):
        outcome = evaluate_config(
            "ghost", None, tiny_graph, tiny_perf_model, tiny_executor,
            search_seconds=1.0, num_gpus=4,
        )
        assert outcome.failed
        assert outcome.throughput == 0.0
        assert outcome.oom


class TestAlpaFailurePath:
    def test_compare_reports_alpa_failure_on_deep_model(self):
        """Past the emulated 64-layer limit, the comparison carries the
        failure instead of crashing (Fig. 9's 'x' markers)."""
        from repro.ir.models import build_model

        graph = build_model("gpt-96l")
        cluster = paper_cluster(4)
        database = SimulatedProfiler(cluster, seed=0).profile(graph)
        result = compare_systems(
            "gpt-96l",
            4,
            cluster=cluster,
            database=database,
            aceso_iterations=2,
            systems=["alpa", "aceso"],
        )
        assert result.outcomes["alpa"].failed
        assert "compilation" in result.outcomes["alpa"].failure_reason
        assert not result.outcomes["aceso"].failed
        assert result.speedup("aceso", "alpa") == float("inf")
