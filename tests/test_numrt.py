"""Tests for the numeric runtime: the semantic-preservation claims."""

import numpy as np
import pytest

from repro.numrt import (
    MLP,
    checkpoint_segments,
    dp_fn,
    dp_loss_and_grads,
    linear_bwd,
    linear_fwd,
    make_dataset,
    max_weight_difference,
    mse_loss_bwd,
    mse_loss_fwd,
    pp_fn,
    rc_fn,
    relu_bwd,
    relu_fwd,
    runs_equivalent,
    serial_fn,
    shard_batch,
    split_columns,
    split_rows,
    split_stages,
    tp_fn,
    train,
)


@pytest.fixture(scope="module")
def setup():
    model = MLP([16, 32, 16, 32, 8], seed=1)
    x, target = make_dataset(24, 16, 8, seed=2)
    reference = train(model, x, target, serial_fn)
    return model, x, target, reference


class TestTensorOps:
    def test_linear_matches_manual(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 3))
        w = rng.normal(size=(3, 5))
        b = rng.normal(size=5)
        np.testing.assert_allclose(linear_fwd(x, w, b), x @ w + b)

    def test_linear_shape_mismatch(self):
        with pytest.raises(ValueError):
            linear_fwd(np.ones((2, 3)), np.ones((4, 5)), np.ones(5))

    def test_linear_bwd_gradcheck(self):
        """Finite differences agree with the analytic gradients."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(3, 4))
        w = rng.normal(size=(4, 2))
        b = rng.normal(size=2)
        target = rng.normal(size=(3, 2))

        def loss_of(weight):
            return mse_loss_fwd(linear_fwd(x, weight, b), target)

        pred = linear_fwd(x, w, b)
        _, grad_w, _ = linear_bwd(x, w, mse_loss_bwd(pred, target))
        eps = 1e-6
        for index in [(0, 0), (2, 1), (3, 0)]:
            bumped = w.copy()
            bumped[index] += eps
            numeric = (loss_of(bumped) - loss_of(w)) / eps
            assert numeric == pytest.approx(grad_w[index], rel=1e-4)

    def test_relu_roundtrip(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_allclose(relu_fwd(x), [0.0, 0.0, 2.0])
        np.testing.assert_allclose(
            relu_bwd(x, np.ones(3)), [0.0, 0.0, 1.0]
        )

    def test_mse_validation(self):
        with pytest.raises(ValueError):
            mse_loss_fwd(np.ones((2, 2)), np.ones((2, 3)))


class TestMLP:
    def test_loss_decreases_with_training(self, setup):
        _, _, _, reference = setup
        assert reference.losses[-1] < reference.losses[0]

    def test_clone_independent(self):
        model = MLP([4, 4], seed=0)
        copy = model.clone()
        copy.layers[0].weight[:] = 0
        assert model.layers[0].weight.any()

    def test_apply_grads_mismatch_raises(self):
        model = MLP([4, 4], seed=0)
        with pytest.raises(ValueError):
            model.apply_grads([], lr=0.1)

    def test_needs_two_dims(self):
        with pytest.raises(ValueError):
            MLP([4])


class TestSharding:
    def test_shard_batch(self):
        x = np.arange(12).reshape(6, 2).astype(float)
        t = x.copy()
        shards = shard_batch(x, t, 3)
        assert len(shards) == 3
        assert shards[0][0].shape == (2, 2)
        with pytest.raises(ValueError):
            shard_batch(x, t, 5)

    def test_split_columns_roundtrip(self):
        model = MLP([4, 8], seed=0)
        shards = split_columns(model.layers[0], 2)
        rebuilt = np.concatenate([s.weight for s in shards], axis=1)
        np.testing.assert_allclose(rebuilt, model.layers[0].weight)
        with pytest.raises(ValueError):
            split_columns(model.layers[0], 3)

    def test_split_rows_bias_once(self):
        model = MLP([4, 8], seed=0)
        shards = split_rows(model.layers[0], 2)
        np.testing.assert_allclose(shards[0].bias, model.layers[0].bias)
        assert not shards[1].bias.any()

    def test_split_stages(self):
        assert split_stages(4, 2) == [(0, 2), (2, 4)]
        with pytest.raises(ValueError):
            split_stages(2, 3)

    def test_checkpoint_segments(self):
        assert checkpoint_segments(5, 2) == [(0, 2), (2, 4), (4, 5)]
        with pytest.raises(ValueError):
            checkpoint_segments(5, 0)


class TestSemanticPreservation:
    """The §3.2.1 claim: every mechanism yields serial-identical
    training (losses and final weights)."""

    def test_data_parallel(self, setup):
        model, x, target, reference = setup
        for workers in (2, 4, 8):
            run = train(model, x, target, dp_fn(workers))
            assert runs_equivalent(reference, run), f"dp={workers}"

    def test_tensor_parallel(self, setup):
        model, x, target, reference = setup
        for ways in (2, 4):
            run = train(model, x, target, tp_fn(ways))
            assert runs_equivalent(reference, run), f"tp={ways}"

    def test_pipeline_parallel(self, setup):
        model, x, target, reference = setup
        for stages, microbatches in [(2, 2), (2, 4), (4, 8)]:
            run = train(model, x, target, pp_fn(stages, microbatches))
            assert runs_equivalent(reference, run), (
                f"pp={stages} mb={microbatches}"
            )

    def test_recompute(self, setup):
        model, x, target, reference = setup
        for segment in (1, 2, 3):
            run = train(model, x, target, rc_fn(segment))
            assert runs_equivalent(reference, run), f"rc seg={segment}"

    def test_dp_loss_matches_serial_loss(self, setup):
        model, x, target, _ = setup
        serial_loss, _ = model.loss_and_grads(x, target)
        dp_loss, _ = dp_loss_and_grads(model, x, target, 4)
        assert dp_loss == pytest.approx(serial_loss)

    def test_max_weight_difference_zero_for_clone(self):
        model = MLP([4, 4], seed=0)
        assert max_weight_difference(model, model.clone()) == 0.0

    def test_runs_equivalent_rejects_mismatch(self, setup):
        model, x, target, reference = setup
        shorter = train(model, x, target, serial_fn, steps=3)
        assert not runs_equivalent(reference, shorter)
