"""Planner fleet: ring properties, atomic writes, router resilience,
chaos replay, fleet artifacts lint, and the HTTP front-end.

The hash-ring properties (balance, *exact* minimal remapping, ladder
stability under membership changes) are pinned with hypothesis; the
router tests use scripted in-process replica clients so failover,
hedging, and every degradation rung are deterministic.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ioutil import write_json_atomic
from repro.lint.artifacts import (
    lint_artifact_path,
    lint_fleet_state_file,
    lint_run_log_file,
)
from repro.service import (
    STATUS_PARTIAL,
    STATUS_REJECTED,
    STATUS_SERVED,
    ChaosEvent,
    ChaosReport,
    FleetConfig,
    FleetRouter,
    HashRing,
    InProcessReplica,
    LocalReplicaClient,
    PlanRequest,
    PlanResponse,
    PlannerDaemon,
    ReplicaError,
    plan_digest,
    run_chaos,
    seeded_schedule,
    serve_fleet,
    synthetic_planner,
)
from repro.telemetry import CallbackSink, TelemetryBus, using_bus


@pytest.fixture()
def bus_events():
    events = []
    bus = TelemetryBus()
    bus.add_sink(CallbackSink(events.append))
    with using_bus(bus):
        yield events


# ----------------------------------------------------------------------
# atomic JSON writes
# ----------------------------------------------------------------------
class TestWriteJsonAtomic:
    def test_writes_and_creates_parents(self, tmp_path):
        path = tmp_path / "deep" / "nest" / "artifact.json"
        out = write_json_atomic(path, {"a": 1})
        assert out == path
        assert json.loads(path.read_text()) == {"a": 1}
        assert path.read_text().endswith("\n")

    def test_replaces_existing_atomically(self, tmp_path):
        path = tmp_path / "x.json"
        write_json_atomic(path, {"v": 1})
        write_json_atomic(path, {"v": 2}, sort_keys=True)
        assert json.loads(path.read_text()) == {"v": 2}
        # No temp-file orphans after successful writes.
        assert list(tmp_path.iterdir()) == [path]

    def test_failure_leaves_previous_contents(self, tmp_path):
        path = tmp_path / "x.json"
        write_json_atomic(path, {"v": 1})
        with pytest.raises(TypeError):
            write_json_atomic(path, {"bad": object()})
        assert json.loads(path.read_text()) == {"v": 1}
        assert list(tmp_path.iterdir()) == [path]


# ----------------------------------------------------------------------
# consistent-hash ring
# ----------------------------------------------------------------------
_NODE_NAMES = st.sets(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
        min_size=1,
        max_size=12,
    ),
    min_size=2,
    max_size=8,
)
_KEYS = [f"key-{i}" for i in range(600)]


class TestHashRing:
    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing().node_for("k")

    def test_membership_validation(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add("a")
        with pytest.raises(ValueError):
            ring.add("")
        with pytest.raises(KeyError):
            ring.remove("missing")
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_ladder_is_distinct_and_owner_first(self):
        ring = HashRing(["a", "b", "c"])
        ladder = ring.nodes_for("some-key", 3)
        assert len(ladder) == len(set(ladder)) == 3
        assert ladder[0] == ring.node_for("some-key")
        # count beyond membership clamps
        assert ring.nodes_for("some-key", 10) == ladder

    @settings(max_examples=50, deadline=None)
    @given(nodes=_NODE_NAMES)
    def test_balance(self, nodes):
        """No replica owns a wildly outsized share of the key space."""
        ring = HashRing(nodes, vnodes=128)
        shares = ring.shares(_KEYS)
        assert min(shares.values()) > 0
        assert max(shares.values()) / min(shares.values()) <= 3.5

    @settings(max_examples=50, deadline=None)
    @given(nodes=_NODE_NAMES, joined=st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz", min_size=13, max_size=16
    ))
    def test_minimal_remapping_on_join(self, nodes, joined):
        """Exact property: a key whose owner changed after a join must
        now be owned by the joined node — nothing else moved."""
        ring = HashRing(nodes)
        before = {key: ring.node_for(key) for key in _KEYS}
        ring.add(joined)
        for key in _KEYS:
            after = ring.node_for(key)
            if after != before[key]:
                assert after == joined

    @settings(max_examples=50, deadline=None)
    @given(nodes=_NODE_NAMES)
    def test_minimal_remapping_on_leave(self, nodes):
        """Exact property: only the removed node's keys move."""
        ring = HashRing(nodes)
        victim = sorted(nodes)[0]
        before = {key: ring.node_for(key) for key in _KEYS}
        ring.remove(victim)
        for key in _KEYS:
            after = ring.node_for(key)
            if after != before[key]:
                assert before[key] == victim

    @settings(max_examples=50, deadline=None)
    @given(nodes=_NODE_NAMES)
    def test_ladder_stable_under_leave(self, nodes):
        """Removing a node deletes it from every failover ladder
        without reordering the survivors."""
        ring = HashRing(nodes)
        victim = sorted(nodes)[-1]
        before = {
            key: ring.nodes_for(key, len(nodes)) for key in _KEYS[:100]
        }
        ring.remove(victim)
        for key, ladder in before.items():
            expected = [n for n in ladder if n != victim]
            assert ring.nodes_for(key, len(nodes)) == expected

    def test_remove_is_exact_inverse_of_add(self):
        ring = HashRing(["a", "b"])
        ring.add("c")
        ring.remove("c")
        fresh = HashRing(["a", "b"])
        assert all(
            ring.node_for(k) == fresh.node_for(k) for k in _KEYS
        )


# ----------------------------------------------------------------------
# scripted replica clients
# ----------------------------------------------------------------------
def _request(model="gpt-4l", **kwargs):
    kwargs.setdefault("gpus", 4)
    kwargs.setdefault("iterations", 2)
    return PlanRequest(model=model, **kwargs)


class ScriptedClient:
    """A replica client whose behavior is scripted per call."""

    def __init__(self, behavior):
        #: ``behavior(payload) -> PlanResponse`` or raises ReplicaError.
        self.behavior = behavior
        self.calls = []
        self.invalidations = 0

    def plan(self, payload, timeout):
        self.calls.append(dict(payload))
        return self.behavior(payload)

    def health(self):
        return {"queue_depth": 0}

    def ready(self):
        return True

    def invalidate(self, *, gpus=None):
        self.invalidations += 1
        return {"dropped": 0}

    def churn(self, event):
        return {"dropped": 0}

    def close(self):
        pass


def _served(payload, *, tag):
    fingerprint = PlanRequest.from_json(payload).fingerprint()
    return PlanResponse(
        status=STATUS_SERVED,
        request_id=1,
        fingerprint=fingerprint,
        plan={"tag": tag},
        objective=1.0,
    )


def _fleet_config(**overrides):
    overrides.setdefault("retries", 0)
    overrides.setdefault("health_interval", 30.0)
    overrides.setdefault("backoff_base", 0.001)
    overrides.setdefault("backoff_cap", 0.002)
    return FleetConfig(**overrides)


# ----------------------------------------------------------------------
# the router
# ----------------------------------------------------------------------
class TestFleetRouter:
    def _local_fleet(self, tmp_path, n=2, delay=0.0, **config):
        replicas = {}
        for i in range(n):
            daemon = PlannerDaemon(
                planner=synthetic_planner(delay),
                workers=2,
                queue_limit=8,
                state_dir=tmp_path / f"r{i}",
            ).start()
            replicas[f"r{i}"] = LocalReplicaClient(daemon)
        router = FleetRouter(
            replicas,
            config=_fleet_config(**config),
            state_path=tmp_path / "router.fleet.json",
        ).start()
        return router, replicas

    def test_routes_and_write_through_cache(self, tmp_path):
        router, _ = self._local_fleet(tmp_path, n=2)
        try:
            request = _request()
            first = router.submit(request)
            assert first.status == STATUS_SERVED
            assert first.replica in ("r0", "r1")
            assert not first.cached
            second = router.submit(request)
            # Served from the router's shared tier, no replica call.
            assert second.cached and second.replica is None
            assert second.plan == first.plan
        finally:
            router.stop()

    def test_failover_on_killed_owner(self, tmp_path):
        router, replicas = self._local_fleet(tmp_path, n=2)
        try:
            request = _request()
            owner = router.ring.node_for(request.fingerprint())
            replicas[owner].killed = True
            response = router.submit(request)
            assert response.status == STATUS_SERVED
            assert response.replica != owner
            assert response.failovers == 1
        finally:
            for client in replicas.values():
                client.killed = False
            router.stop()

    def test_backpressure_fails_over(self):
        def overloaded(payload):
            fingerprint = PlanRequest.from_json(payload).fingerprint()
            return PlanResponse(
                status=STATUS_REJECTED,
                request_id=1,
                fingerprint=fingerprint,
                retry_after=0.5,
            )

        clients = {
            "a": ScriptedClient(overloaded),
            "b": ScriptedClient(lambda p: _served(p, tag="b")),
        }
        router = FleetRouter(clients, config=_fleet_config())
        request = _request()
        owner = router.ring.node_for(request.fingerprint())
        if owner == "b":  # make "a" the owner for a deterministic test
            router.stop()
            clients["a"], clients["b"] = clients["b"], clients["a"]
            router = FleetRouter(
                {"a": clients["a"], "b": clients["b"]},
                config=_fleet_config(),
            )
        response = router.submit(request)
        assert response.status == STATUS_SERVED
        assert response.failovers >= 1
        router.stop()

    def test_degrades_to_partial_when_all_replicas_shed(self):
        trimmed = FleetConfig.__dataclass_fields__[
            "degraded_deadline_seconds"
        ].default

        def overloaded(payload):
            fingerprint = PlanRequest.from_json(payload).fingerprint()
            if payload.get("deadline_seconds") == trimmed:
                return PlanResponse(
                    status=STATUS_PARTIAL,
                    request_id=1,
                    fingerprint=fingerprint,
                    plan={"cut": True},
                    objective=9.0,
                )
            return PlanResponse(
                status=STATUS_REJECTED,
                request_id=1,
                fingerprint=fingerprint,
                retry_after=0.5,
            )

        router = FleetRouter(
            {"a": ScriptedClient(overloaded),
             "b": ScriptedClient(overloaded)},
            config=_fleet_config(),
        )
        response = router.submit(_request())
        assert response.status == STATUS_PARTIAL
        assert response.plan == {"cut": True}
        router.stop()

    def test_degrades_to_stale_then_shed(self, tmp_path):
        router, replicas = self._local_fleet(tmp_path, n=2)
        try:
            request = _request()
            fresh = router.submit(request)
            assert fresh.status == STATUS_SERVED
            for client in replicas.values():
                client.killed = True
            # Invalidation demotes the shared tier to stale entries.
            result = router.invalidate()
            assert result["demoted"] >= 1
            stale = router.submit(request)
            assert stale.status == STATUS_SERVED
            assert stale.stale is True
            assert stale.plan == fresh.plan
            # A fingerprint with no stale entry is shed, typed.
            shed = router.submit(_request(model="gpt-13l"))
            assert shed.status == STATUS_REJECTED
            assert shed.retry_after is not None
        finally:
            for client in replicas.values():
                client.killed = False
            router.stop()

    def test_hedged_request_wins_on_slow_owner(self):
        def slow(payload):
            time.sleep(0.4)
            return _served(payload, tag="slow")

        def fast(payload):
            return _served(payload, tag="fast")

        request = _request()
        fingerprint = request.fingerprint()
        probe = FleetRouter(
            {"a": ScriptedClient(fast), "b": ScriptedClient(fast)},
            config=_fleet_config(),
        )
        owner, backup = probe.ring.nodes_for(fingerprint, 2)
        probe.stop()
        router = FleetRouter(
            {owner: ScriptedClient(slow), backup: ScriptedClient(fast)},
            config=_fleet_config(hedge_min_seconds=0.05),
        )
        # Hedging arms only with latency history: pretend the owner
        # usually answers fast, so 0.4s is past its p99 budget.
        for _ in range(10):
            router._replicas[owner].latencies.append(0.01)
        response = router.submit(request)
        assert response.status == STATUS_SERVED
        assert response.hedged is True
        assert response.plan == {"tag": "fast"}
        assert response.replica == backup
        router.stop()

    def test_invalidate_fans_out(self):
        clients = {
            "a": ScriptedClient(lambda p: _served(p, tag="a")),
            "b": ScriptedClient(lambda p: _served(p, tag="b")),
        }
        router = FleetRouter(clients, config=_fleet_config())
        result = router.invalidate(gpus=4)
        assert set(result["replicas"]) == {"a", "b"}
        assert all(c.invalidations == 1 for c in clients.values())
        router.stop()

    def test_state_artifact_is_lintable(self, tmp_path):
        router, _ = self._local_fleet(tmp_path, n=2)
        try:
            state = tmp_path / "router.fleet.json"
            assert state.exists()
            assert lint_fleet_state_file(state) == []
            assert lint_artifact_path(state) == []
        finally:
            router.stop()

    def test_fleet_health_and_ready(self, tmp_path):
        router, replicas = self._local_fleet(tmp_path, n=2)
        try:
            health = router.fleet_health()
            assert health["status"] == "healthy"
            assert set(health["replicas"]) == {"r0", "r1"}
            assert router.ready
        finally:
            router.stop()

    def test_emits_routed_and_completed(self, tmp_path, bus_events):
        router, _ = self._local_fleet(tmp_path, n=2)
        try:
            router.submit(_request())
        finally:
            router.stop()
        names = [e.name for e in bus_events]
        assert "fleet.start" in names
        assert "fleet.request.routed" in names
        assert "fleet.request.completed" in names
        assert "fleet.stop" in names


# ----------------------------------------------------------------------
# chaos harness
# ----------------------------------------------------------------------
class TestChaos:
    def test_chaos_event_validation(self):
        with pytest.raises(ValueError):
            ChaosEvent(0, "explode", "r0")
        with pytest.raises(ValueError):
            ChaosEvent(-1, "kill", "r0")
        event = ChaosEvent(3, "kill", "r0")
        assert ChaosEvent.from_json(event.to_json()) == event

    def test_seeded_schedule_is_deterministic(self):
        names = ["replica-0", "replica-1", "replica-2"]
        one = seeded_schedule(seed=7, requests=20, replicas=names)
        two = seeded_schedule(seed=7, requests=20, replicas=names)
        assert one == two
        other = seeded_schedule(seed=8, requests=20, replicas=names)
        assert one != other

    def test_unknown_replica_in_events_rejected(self):
        with pytest.raises(ValueError, match="unknown replicas"):
            run_chaos(
                [_request()],
                [ChaosEvent(0, "kill", "nope")],
                replicas=2,
                planner=synthetic_planner(),
            )

    def test_zero_lost_and_digest_identical(self, tmp_path):
        requests = [
            _request(model=f"m{i % 3}", seed=i % 2) for i in range(14)
        ]
        events = seeded_schedule(
            seed=3, requests=len(requests),
            replicas=["replica-0", "replica-1", "replica-2"],
        )
        report = run_chaos(
            requests,
            events,
            replicas=3,
            planner=synthetic_planner(0.005),
            state_root=tmp_path,
            daemon_kwargs={"workers": 2, "queue_limit": 16},
        )
        assert report.total == len(requests)
        assert report.lost == 0
        assert report.digest_mismatches == []
        assert report.ok
        # every answer is terminal and typed
        assert sum(report.by_status.values()) == report.total
        round_tripped = ChaosReport.from_json(report.to_json())
        assert round_tripped.to_json() == report.to_json()

    def test_kill_every_owner_still_serves(self, tmp_path):
        """Kill each replica right before a request it owns; the fleet
        must still answer everything, bit-identically."""
        requests = [_request(model=f"m{i}") for i in range(6)]
        events = [
            ChaosEvent(1, "kill", "replica-0"),
            ChaosEvent(3, "restart", "replica-0"),
            ChaosEvent(4, "kill", "replica-1"),
        ]
        report = run_chaos(
            requests,
            events,
            replicas=2,
            planner=synthetic_planner(0.005),
            state_root=tmp_path,
            daemon_kwargs={"workers": 2, "queue_limit": 16},
        )
        assert report.lost == 0
        assert report.ok

    def test_restart_readmits_state(self, tmp_path):
        replica = InProcessReplica(
            "solo",
            state_dir=tmp_path / "solo",
            planner=synthetic_planner(),
            daemon_kwargs={"workers": 1, "queue_limit": 4},
        ).start()
        request = _request()
        response = replica.plan(request.to_json(), 10.0)
        assert response.status == STATUS_SERVED
        replica.kill()
        with pytest.raises(ReplicaError):
            replica.plan(request.to_json(), 10.0)
        replica.restart()
        warm = replica.plan(request.to_json(), 10.0)
        # The restarted daemon preloaded its disk cache.
        assert warm.cached
        assert plan_digest(warm.plan) == plan_digest(response.plan)
        replica.close()


# ----------------------------------------------------------------------
# fleet artifact lint (ACE40x / ACE41x)
# ----------------------------------------------------------------------
def _fleet_state(**overrides):
    state = {
        "format_version": 1,
        "fleet": FleetConfig().to_json(),
        "replicas": [
            {"name": "r0", "healthy": True, "address": None},
            {"name": "r1", "healthy": False, "address": None},
        ],
    }
    state.update(overrides)
    return state


def _log_line(name, **attrs):
    return json.dumps({
        "name": name, "kind": "event", "ts": 1.0, "pid": 1,
        "source": "fleet", "level": "info", "attrs": attrs,
    })


class TestFleetLint:
    def test_clean_state(self, tmp_path):
        path = tmp_path / "ok.fleet.json"
        write_json_atomic(path, _fleet_state())
        assert lint_fleet_state_file(path) == []

    def test_unreadable_and_missing_fields(self, tmp_path):
        path = tmp_path / "torn.fleet.json"
        path.write_text("{nope")
        codes = [d.code for d in lint_fleet_state_file(path)]
        assert codes == ["ACE401"]
        path2 = tmp_path / "sparse.fleet.json"
        write_json_atomic(path2, {"format_version": 1})
        codes = [d.code for d in lint_fleet_state_file(path2)]
        assert "ACE401" in codes

    def test_duplicate_replicas(self, tmp_path):
        path = tmp_path / "dup.fleet.json"
        write_json_atomic(path, _fleet_state(replicas=[
            {"name": "r0", "healthy": True},
            {"name": "r0", "healthy": True},
        ]))
        codes = [d.code for d in lint_fleet_state_file(path)]
        assert codes == ["ACE402"]

    def test_config_out_of_range(self, tmp_path):
        bad = _fleet_state()
        bad["fleet"]["vnodes"] = 0
        bad["fleet"]["retries"] = -1
        path = tmp_path / "bad.fleet.json"
        write_json_atomic(path, bad)
        codes = sorted(d.code for d in lint_fleet_state_file(path))
        assert codes == ["ACE403", "ACE403"]

    def test_zero_replicas(self, tmp_path):
        path = tmp_path / "none.fleet.json"
        write_json_atomic(path, _fleet_state(replicas=[]))
        codes = [d.code for d in lint_fleet_state_file(path)]
        assert codes == ["ACE403"]

    def test_dispatch_by_shape(self, tmp_path):
        path = tmp_path / "renamed.json"
        write_json_atomic(path, _fleet_state(replicas=[
            {"name": "r0", "healthy": True},
            {"name": "r0", "healthy": True},
        ]))
        codes = [d.code for d in lint_artifact_path(path)]
        assert codes == ["ACE402"]

    def test_run_log_clean(self, tmp_path):
        log = tmp_path / "run.jsonl"
        log.write_text("\n".join([
            _log_line("fleet.start", replicas=["r0", "r1"]),
            _log_line("fleet.request.routed", fingerprint="f" * 16,
                      owner="r0", ladder=["r0", "r1"]),
            _log_line("fleet.request.completed", fingerprint="f" * 16,
                      status="served", replica="r0"),
            _log_line("fleet.stop"),
        ]) + "\n")
        assert lint_run_log_file(log) == []

    def test_run_log_lost_request(self, tmp_path):
        log = tmp_path / "run.jsonl"
        log.write_text("\n".join([
            _log_line("fleet.start", replicas=["r0"]),
            _log_line("fleet.request.routed", fingerprint="a" * 16,
                      owner="r0", ladder=["r0"]),
        ]) + "\n")
        codes = [d.code for d in lint_run_log_file(log)]
        assert codes == ["ACE410"]

    def test_run_log_undeclared_replica(self, tmp_path):
        log = tmp_path / "run.jsonl"
        log.write_text("\n".join([
            _log_line("fleet.start", replicas=["r0"]),
            _log_line("fleet.replica.down", replica="ghost"),
        ]) + "\n")
        codes = [d.code for d in lint_run_log_file(log)]
        assert codes == ["ACE411"]

    def test_run_log_joined_replica_is_declared(self, tmp_path):
        log = tmp_path / "run.jsonl"
        log.write_text("\n".join([
            _log_line("fleet.start", replicas=["r0"]),
            _log_line("fleet.ring.rebuilt", replicas=["r0", "r2"],
                      joined="r2"),
            _log_line("fleet.replica.down", replica="r2"),
        ]) + "\n")
        assert lint_run_log_file(log) == []


# ----------------------------------------------------------------------
# HTTP front-end
# ----------------------------------------------------------------------
class TestFleetHTTP:
    def test_plan_health_invalidate_over_http(self, tmp_path):
        replicas = {
            f"r{i}": InProcessReplica(
                f"r{i}",
                state_dir=tmp_path / f"r{i}",
                planner=synthetic_planner(),
                daemon_kwargs={"workers": 1, "queue_limit": 4},
            ).start()
            for i in range(2)
        }
        router = FleetRouter(
            dict(replicas), config=_fleet_config()
        ).start()
        server = serve_fleet(router, host="127.0.0.1", port=0)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            body = json.dumps(_request().to_json()).encode()
            req = urllib.request.Request(
                f"{base}/plan", data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req, timeout=10) as raw:
                assert raw.status == 200
                data = json.loads(raw.read())
            assert data["status"] == STATUS_SERVED
            assert data["replica"] in replicas
            with urllib.request.urlopen(
                f"{base}/healthz", timeout=10
            ) as raw:
                health = json.loads(raw.read())
            assert health["status"] == "healthy"
            inv = urllib.request.Request(
                f"{base}/invalidate", data=b"{}",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(inv, timeout=10) as raw:
                dropped = json.loads(raw.read())
            assert set(dropped["replicas"]) == set(replicas)
        finally:
            server.shutdown()
            thread.join(timeout=5)
            router.stop()
            server.server_close()
