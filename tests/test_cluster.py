"""Tests for repro.cluster: devices, topology, collectives."""

import pytest

from repro.cluster import (
    ClusterSpec,
    CollectiveCostModel,
    DeviceSpec,
    LinkSpec,
    a100,
    paper_cluster,
    single_node,
    v100,
)


class TestDeviceSpec:
    def test_v100_defaults(self):
        device = v100()
        assert device.memory_bytes == 32 * 1024 ** 3
        assert device.peak_flops["fp16"] > device.peak_flops["fp32"]

    def test_sustained_below_peak(self):
        device = v100()
        assert device.sustained_flops("fp16") < device.peak_flops["fp16"]

    def test_unknown_precision_raises(self):
        with pytest.raises(KeyError):
            v100().sustained_flops("fp8")

    def test_compute_time_roofline(self):
        device = v100()
        # Compute-bound: huge flops, no bytes.
        t1 = device.compute_time(1e12, 0, "fp16")
        # Memory-bound: no flops, huge bytes.
        t2 = device.compute_time(0, 1e11, "fp16")
        assert t1 > device.kernel_overhead
        assert t2 > device.kernel_overhead

    def test_compute_time_negative_raises(self):
        with pytest.raises(ValueError):
            v100().compute_time(-1, 0, "fp16")

    def test_invalid_efficiency_raises(self):
        with pytest.raises(ValueError):
            DeviceSpec(efficiency=0.0)
        with pytest.raises(ValueError):
            DeviceSpec(efficiency=1.5)

    def test_a100_faster(self):
        assert a100().sustained_flops("fp16") > v100().sustained_flops("fp16")


class TestLinkSpec:
    def test_transfer_time(self):
        link = LinkSpec(bandwidth=1e9, latency=1e-6)
        assert link.transfer_time(1e9) == pytest.approx(1.0 + 1e-6)
        assert link.transfer_time(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(bandwidth=0, latency=0)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth=1, latency=-1)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth=1e9, latency=0).transfer_time(-5)


class TestClusterSpec:
    def test_paper_cluster_shapes(self):
        assert paper_cluster(32).num_nodes == 4
        assert paper_cluster(8).num_nodes == 1
        assert paper_cluster(4).num_gpus == 4

    def test_paper_cluster_validation(self):
        with pytest.raises(ValueError):
            paper_cluster(0)
        with pytest.raises(ValueError):
            paper_cluster(12)  # not full nodes

    def test_node_of(self):
        cluster = paper_cluster(16)
        assert cluster.node_of(0) == 0
        assert cluster.node_of(8) == 1
        with pytest.raises(IndexError):
            cluster.node_of(16)

    def test_group_spans_nodes(self):
        cluster = paper_cluster(16)
        assert not cluster.group_spans_nodes(range(8))
        assert cluster.group_spans_nodes(range(4, 12))

    def test_group_link_intra_vs_inter(self):
        cluster = paper_cluster(16)
        intra = cluster.group_link(range(8))
        inter = cluster.group_link(range(16))
        assert intra.bandwidth > inter.bandwidth

    def test_inter_node_bandwidth_shared(self):
        cluster = paper_cluster(16)
        few = cluster.group_link([0, 8])
        many = cluster.group_link(range(16))
        assert few.bandwidth > many.bandwidth

    def test_link_for_group_size_bounds(self):
        cluster = paper_cluster(8)
        with pytest.raises(ValueError):
            cluster.link_for_group_size(16)
        with pytest.raises(ValueError):
            cluster.link_for_group_size(0)

    def test_empty_group_raises(self):
        with pytest.raises(ValueError):
            paper_cluster(8).group_link([])

    def test_describe(self):
        assert "V100" in paper_cluster(8).describe()


class TestCollectives:
    @pytest.fixture()
    def model(self):
        return CollectiveCostModel(paper_cluster(16))

    def test_allreduce_single_rank_free(self, model):
        assert model.allreduce_time(1 << 20, 1) == 0.0

    def test_allreduce_zero_bytes_free(self, model):
        assert model.allreduce_time(0, 8) == 0.0

    def test_allreduce_monotone_in_bytes(self, model):
        assert model.allreduce_time(2 << 20, 8) > model.allreduce_time(
            1 << 20, 8
        )

    def test_allreduce_crossing_nodes_costs_more(self, model):
        within = model.allreduce_time(64 << 20, 8)
        across = model.allreduce_time(64 << 20, 16)
        assert across > within

    def test_allgather_half_of_allreduce_wire(self, model):
        # Ring all-gather moves half the bytes of ring all-reduce.
        ar = model.allreduce_time(64 << 20, 8)
        ag = model.allgather_time(64 << 20, 8)
        assert ag < ar

    def test_reducescatter_equals_allgather(self, model):
        assert model.reducescatter_time(8 << 20, 8) == pytest.approx(
            model.allgather_time(8 << 20, 8)
        )

    def test_broadcast_positive(self, model):
        assert model.broadcast_time(1 << 20, 4) > 0

    def test_p2p_intra_faster_than_inter(self, model):
        intra = model.p2p_time(8 << 20, 0, 1)
        inter = model.p2p_time(8 << 20, 7, 8)
        assert intra < inter

    def test_p2p_between_stages_boundary(self, model):
        # Boundary inside node 0 vs at the node edge.
        inside = model.p2p_time_between_stages(8 << 20, 3)
        edge = model.p2p_time_between_stages(8 << 20, 7)
        assert inside < edge

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.allreduce_time(-1, 2)
        with pytest.raises(ValueError):
            model.allreduce_time(1, 0)
