"""Negative fixtures and end-to-end properties of ``repro-lint``.

Each fixture corrupts one artifact (or source) in a documented way and
asserts the exact diagnostic code fires with a non-zero CLI exit; the
property tests assert the search and daemon only ever produce artifacts
the linter calls clean.
"""

import json

import pytest

from repro.cluster import paper_cluster
from repro.core.budget import SearchBudget
from repro.core.search import AcesoSearch, search_all_stage_counts
from repro.lint import (
    analyze_source,
    analyze_structure,
    lint_artifact_path,
    lint_checkpoint_file,
    lint_journal_file,
    lint_plan_cache_file,
    lint_run_log_file,
)
from repro.lint.cli import lint_main
from repro.parallel import balanced_config
from repro.parallel.serialization import config_to_dict
from repro.service.daemon import PlannerDaemon
from repro.service.planner import PlanOutcome
from repro.service.protocol import (
    STATUS_REJECTED,
    STATUS_SERVED,
    PlanRequest,
)

from conftest import (
    make_activation_heavy_gpt,
    make_tight_cluster,
)


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestNegativeFixtures:
    def test_corrupt_checkpoint_is_ace320(self, tmp_path):
        path = tmp_path / "deadbeefdeadbeef.ckpt.json"
        path.write_text('{"format_version": 1, "stage_co')  # torn write
        assert codes(lint_checkpoint_file(path)) == ["ACE320"]
        assert lint_main([str(path)]) == 1

    def test_wrong_version_checkpoint_is_ace321(self, tmp_path):
        path = tmp_path / "deadbeefdeadbeef.ckpt.json"
        path.write_text(json.dumps({
            "format_version": 7,
            "stage_counts": [1, 2],
            "budget_kwargs": {},
            "context": {},
            "completed": {},
            "failures": [],
        }))
        assert codes(lint_checkpoint_file(path)) == ["ACE321"]

    def test_cross_field_checkpoint_rot_is_ace323(self, tmp_path):
        path = tmp_path / "deadbeefdeadbeef.ckpt.json"
        path.write_text(json.dumps({
            "format_version": 1,
            "stage_counts": [1, 2],
            "budget_kwargs": {},
            "context": {},
            # count 4 was never requested, and it also appears failed.
            "completed": {"4": {
                "best_config": {
                    "format_version": 1,
                    "microbatch_size": 1,
                    "stages": [{
                        "start": 0, "end": 1, "num_devices": 1,
                        "tp": [1], "dp": [1], "tp_dim": [0],
                        "recompute": [False],
                    }] * 4,
                },
                "best_objective": 1.0,
                "top_configs": [],
                "num_estimates": 1,
                "elapsed_seconds": 0.1,
                "converged": True,
                "visited_signatures": [],
            }},
            "failures": [
                {"num_stages": 4, "error": "boom", "attempts": 1}
            ],
        }))
        found = codes(lint_checkpoint_file(path))
        assert found.count("ACE323") == 2  # stray count + both-sets

    def test_wrong_fingerprint_cache_entry_is_ace311(self, tmp_path):
        request = PlanRequest(model="gpt-2l", gpus=4)
        entry = {
            "plan": {"format_version": 1, "microbatch_size": 1,
                     "stages": [{"start": 0, "end": 1, "num_devices": 4,
                                 "tp": [2], "dp": [2], "tp_dim": [0],
                                 "recompute": [False]}]},
            "objective": 1.0,
            "model": request.model,
            "gpus": request.gpus,
        }
        good = tmp_path / f"{request.fingerprint()}.plan.json"
        good.write_text(json.dumps(entry))
        assert lint_plan_cache_file(good) == []
        bad = tmp_path / "NOT-A-FINGERPRINT.plan.json"
        bad.write_text(json.dumps(entry))
        assert codes(lint_plan_cache_file(bad)) == ["ACE311"]
        assert lint_main([str(bad)]) == 1

    def test_cache_entry_schema_rot_is_ace310(self, tmp_path):
        path = tmp_path / "deadbeefdeadbeef.plan.json"
        path.write_text(json.dumps({
            "plan": None, "objective": "cheap", "extra": 1,
        }))
        found = codes(lint_plan_cache_file(path))
        assert "ACE310" in found and "ACE311" not in found

    def test_renamed_journal_is_ace331(self, tmp_path):
        request = PlanRequest(model="gpt-2l", gpus=4)
        moved = tmp_path / f"{'0' * 16}.request.json"
        moved.write_text(json.dumps(request.to_json()))
        assert codes(lint_journal_file(moved)) == ["ACE331"]
        correct = tmp_path / f"{request.fingerprint()}.request.json"
        correct.write_text(json.dumps(request.to_json()))
        assert lint_journal_file(correct) == []

    def test_malformed_journal_is_ace330(self, tmp_path):
        path = tmp_path / f"{'0' * 16}.request.json"
        path.write_text(json.dumps({"gpus": 4}))  # no model
        assert codes(lint_journal_file(path)) == ["ACE330"]

    def test_infeasible_memory_config_is_ace201(self):
        graph = make_activation_heavy_gpt()
        cluster = make_tight_cluster(num_gpus=4, memory_mb=64)
        config = balanced_config(graph, cluster, 2, microbatch_size=16)
        from repro.lint import analyze_config

        found = codes(analyze_config(config, graph, cluster))
        assert found and set(found) == {"ACE201"}

    def test_unregistered_event_in_run_log_is_ace343(self, tmp_path):
        log = tmp_path / "events.jsonl"
        record = {
            "name": "search.begin", "kind": "event", "ts": 0.1,
            "pid": 1, "source": "search", "level": 20, "attrs": {},
        }
        rogue = dict(record, name="totally.unregistered")
        log.write_text(
            json.dumps(record) + "\n" + json.dumps(rogue) + "\n"
        )
        assert codes(lint_run_log_file(log)) == ["ACE343"]
        assert lint_main([str(log)]) == 1

    def test_bad_run_log_line_is_ace340_ace341_ace342(self, tmp_path):
        log = tmp_path / "events.jsonl"
        record = {
            "name": "search.begin", "kind": "event", "ts": 0.1,
            "pid": 1, "source": "search", "level": 20, "attrs": {},
        }
        log.write_text("\n".join([
            "{torn",
            json.dumps({"name": "search.begin"}),
            json.dumps(dict(record, kind="telegram")),
        ]) + "\n")
        assert codes(lint_run_log_file(log)) == [
            "ACE340", "ACE341", "ACE342"
        ]

    def test_unseeded_random_in_core_source_is_ace901(self, tmp_path):
        path = tmp_path / "sampler.py"
        path.write_text(
            "import random\n"
            "def pick(items):\n"
            "    return items[random.randrange(len(items))]\n"
        )
        found = analyze_source(
            path.read_text(), str(path), module_path="core/sampler.py"
        )
        assert codes(found) == ["ACE901"]

    def test_unregistered_emit_in_source_is_ace903(self):
        found = analyze_source(
            'get_bus().emit("search.blorp", source="search")\n',
            "fixture.py",
            module_path="core/fixture.py",
        )
        assert codes(found) == ["ACE903"]

    def test_strategy_and_arena_emits_lint_clean(self):
        source = (
            'get_bus().emit("search.strategy.proposal", source="mcmc")\n'
            'get_bus().emit("search.strategy.arm", source="bandit")\n'
            'get_bus().emit("search.strategy.stats", source="mcmc")\n'
            'get_bus().emit("arena.begin", source="arena")\n'
            'get_bus().emit("arena.entry.begin", source="arena")\n'
            'get_bus().emit("arena.entry.end", source="arena")\n'
            'get_bus().emit("arena.entry.failed", source="arena")\n'
            'get_bus().emit("arena.end", source="arena")\n'
        )
        assert analyze_source(
            source, "fixture.py", module_path="core/fixture.py"
        ) == []

    def test_unregistered_strategy_or_arena_emit_is_ace903(self):
        found = analyze_source(
            'get_bus().emit("search.strategy.blorp", source="mcmc")\n'
            'get_bus().emit("arena.blorp", source="arena")\n',
            "fixture.py",
            module_path="core/fixture.py",
        )
        assert codes(found) == ["ACE903", "ACE903"]

    def test_strategy_events_in_run_log_lint_clean(self, tmp_path):
        log = tmp_path / "events.jsonl"
        base = {
            "kind": "event", "ts": 0.1, "pid": 1, "level": 20,
        }
        log.write_text("\n".join(
            json.dumps(dict(base, name=name, source=source, attrs={}))
            for name, source in [
                ("search.strategy.proposal", "mcmc"),
                ("search.strategy.arm", "bandit"),
                ("search.strategy.stats", "mcmc"),
                ("arena.begin", "arena"),
                ("arena.entry.begin", "arena"),
                ("arena.entry.end", "arena"),
                ("arena.end", "arena"),
            ]
        ) + "\n")
        assert lint_run_log_file(log) == []
        assert lint_main([str(log)]) == 0

    def test_cache_entry_strategy_field_is_optional_but_typed(
        self, tmp_path
    ):
        entry = {
            "plan": {"format_version": 1, "microbatch_size": 1,
                     "stages": [{"start": 0, "end": 1, "num_devices": 4,
                                 "tp": [2], "dp": [2], "tp_dim": [0],
                                 "recompute": [False]}]},
            "objective": 1.0,
            "model": "gpt-2l",
            "gpus": 4,
        }
        path = tmp_path / "deadbeefdeadbeef.plan.json"
        # Entries minted before the field existed stay clean, ...
        path.write_text(json.dumps(entry))
        assert lint_plan_cache_file(path) == []
        # ... so do entries stamped with the strategy that planned them,
        path.write_text(json.dumps(dict(entry, strategy="mcmc")))
        assert lint_plan_cache_file(path) == []
        # ... but a non-string strategy is schema rot.
        path.write_text(json.dumps(dict(entry, strategy=7)))
        assert codes(lint_plan_cache_file(path)) == ["ACE310"]


class TestSearchArtifactsStayClean:
    """Property: a seeded search only produces lint-clean artifacts."""

    def test_visited_configs_are_structurally_clean(
        self, tiny_graph, small_cluster, tiny_perf_model
    ):
        init = balanced_config(tiny_graph, small_cluster, 4)
        search = AcesoSearch(tiny_graph, small_cluster, tiny_perf_model)
        result = search.run(init, SearchBudget(max_iterations=5))
        for _, config in [(None, result.best_config)] + list(
            result.top_configs
        ):
            assert analyze_structure(
                config, tiny_graph, small_cluster
            ) == []

    def test_checkpoints_and_plans_lint_clean(
        self, tiny_graph, small_cluster, tiny_perf_model, tmp_path
    ):
        checkpoint = tmp_path / "search.ckpt.json"
        multi = search_all_stage_counts(
            tiny_graph, small_cluster, tiny_perf_model,
            budget_per_count={"max_iterations": 3},
            checkpoint_path=checkpoint,
        )
        assert lint_checkpoint_file(checkpoint) == []
        plan = tmp_path / "best.plan-dict.json"
        plan.write_text(json.dumps(
            config_to_dict(multi.best.best_config)
        ))
        assert lint_artifact_path(plan) == []
        assert lint_main([str(tmp_path)]) == 0


class TestDaemonAdmissionLint:
    def make(self, planner, **kwargs):
        kwargs.setdefault("workers", 1)
        kwargs.setdefault("queue_limit", 4)
        daemon = PlannerDaemon(planner=planner, **kwargs).start()
        self.daemons.append(daemon)
        return daemon

    @pytest.fixture(autouse=True)
    def _cleanup(self):
        self.daemons = []
        yield
        for daemon in self.daemons:
            daemon.drain(timeout=5)

    def test_invalid_request_rejected_without_worker(self):
        calls = []

        def recording_planner(request, *, deadline=None,
                              checkpoint_path=None):
            calls.append(request)
            return PlanOutcome(plan={"model": request.model}, objective=1.0)

        daemon = self.make(recording_planner, admission_lint=True)
        response = daemon.submit(
            PlanRequest(model="no-such-model", gpus=4), timeout=10
        )
        assert response.status == STATUS_REJECTED
        assert [d["code"] for d in response.diagnostics] == ["ACE204"]
        assert response.retry_after is None
        assert calls == []  # no worker ever saw the request

    def test_unbuildable_cluster_rejected(self):
        def never_planner(request, *, deadline=None, checkpoint_path=None):
            raise AssertionError("must not be called")

        daemon = self.make(never_planner, admission_lint=True)
        response = daemon.submit(
            PlanRequest(model="gpt-2l", gpus=12), timeout=10
        )
        assert response.status == STATUS_REJECTED
        assert [d["code"] for d in response.diagnostics] == ["ACE203"]

    def test_valid_request_planned_identically(self):
        def stub_planner(request, *, deadline=None, checkpoint_path=None):
            return PlanOutcome(
                plan={"model": request.model, "gpus": request.gpus},
                objective=0.25,
            )

        request = PlanRequest(model="gpt-2l", gpus=4)
        linted = self.make(stub_planner, admission_lint=True)
        unlinted = self.make(stub_planner, admission_lint=False)
        with_lint = linted.submit(request, timeout=10)
        without_lint = unlinted.submit(request, timeout=10)
        assert with_lint.status == STATUS_SERVED
        assert with_lint.plan == without_lint.plan
        assert with_lint.objective == without_lint.objective
        assert with_lint.diagnostics == []

    def test_rejection_emits_invalid_event(self):
        from repro.telemetry import CallbackSink, TelemetryBus, using_bus
        from repro.telemetry.events import SERVICE_REQUEST_INVALID

        events = []
        bus = TelemetryBus()
        bus.add_sink(CallbackSink(events.append))
        with using_bus(bus):
            daemon = self.make(lambda *a, **k: None, admission_lint=True)
            daemon.submit(
                PlanRequest(model="no-such-model", gpus=4), timeout=10
            )
        invalid = [e for e in events if e.name == SERVICE_REQUEST_INVALID]
        assert len(invalid) == 1
        assert invalid[0].attrs["codes"] == ["ACE204"]
