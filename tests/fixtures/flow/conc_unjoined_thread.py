"""ACE933: non-daemon thread started and abandoned."""

import threading


def work():
    pass


def launch():
    helper = threading.Thread(target=work)
    helper.start()
