"""ACE920: set iteration order reaches ordered JSON output."""

import json


def dump_names(out):
    names = {"b", "a", "c"}
    ordered = list(names)
    json.dump(ordered, out)
