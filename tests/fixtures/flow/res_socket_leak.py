"""ACE941: socket opened outside with and not closed on every path."""

import socket


def probe(host):
    conn = socket.create_connection((host, 80))
    conn.sendall(b"ping")
    return conn.recv(16)
