"""ACE934: executor created without with/finally shutdown."""

from concurrent.futures import ThreadPoolExecutor


def job():
    return 1


def compute():
    pool = ThreadPoolExecutor(max_workers=2)
    future = pool.submit(job)
    return future.result()
