"""ACE931: time.sleep while holding the instance lock."""

import threading
import time


class Poller:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def poll(self):
        with self._lock:
            time.sleep(0.5)
            self.value += 1
