"""ACE920: unseeded RNG value written via write_json_atomic."""

import random

from repro.ioutil import write_json_atomic


def checkpoint(path):
    jitter = random.random()
    write_json_atomic(path, {"jitter": jitter})
