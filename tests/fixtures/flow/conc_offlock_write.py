"""ACE930: thread-reachable method writes a lock-protected attribute
without the lock."""

import threading


class Tracker:
    def __init__(self):
        self._lock = threading.Lock()
        self.status = "idle"

    def start(self):
        worker = threading.Thread(target=self._loop, daemon=True)
        worker.start()

    def _loop(self):
        self.status = "running"

    def finish(self):
        with self._lock:
            self.status = "done"
