"""ACE920: wall-clock time flows through a local into json.dump."""

import json
import time


def save(out):
    started = time.time()
    payload = {"started": started}
    json.dump(payload, out)
