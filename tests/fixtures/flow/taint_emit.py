"""ACE922: wall-clock timestamp in a telemetry event payload."""

import time


def report(bus):
    bus.emit("search.step", wall=time.time())
