"""Clean: every resource is with-scoped, finally-released, adopted by
a consumer, or handed to an owner."""

import os
import socket
import tempfile


def read_config(path):
    with open(path) as handle:
        return handle.read()


def read_closed(path):
    handle = open(path)
    try:
        return handle.read()
    finally:
        handle.close()


def probe(host):
    with socket.create_connection((host, 80)) as conn:
        conn.sendall(b"ping")
        return conn.recv(16)


def atomic_write(path, data):
    fd, temp_name = tempfile.mkstemp(dir=os.path.dirname(path))
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(data)
        os.replace(temp_name, path)
    finally:
        if os.path.exists(temp_name):
            os.unlink(temp_name)


class Sink:
    def __init__(self, path):
        self._handle = open(path, "a")

    def close(self):
        self._handle.close()
