"""Clean: sanitized/seeded values may reach serialization sinks.

Every pattern here is the sanctioned fix for an ACE92x finding:
sorted() fixes filesystem and set order, an explicitly seeded RNG is
deterministic, and monotonic clocks are accepted in artifacts.
"""

import json
import os
import random
import time


def manifest(root, out):
    files = sorted(os.listdir(root))
    json.dump({"files": files}, out)


def dump_names(out):
    names = {"b", "a", "c"}
    json.dump(sorted(names), out)


def replayable(seed, out):
    rng = random.Random(seed)
    json.dump({"draw": rng.random()}, out)


def timed(out):
    elapsed = time.monotonic()
    json.dump({"elapsed": elapsed}, out)
