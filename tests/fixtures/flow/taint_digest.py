"""ACE921: object identity fed into a sha256 fingerprint."""

import hashlib


def hash_plan(plan):
    sha = hashlib.sha256()
    sha.update(str(id(plan)).encode())
    return sha.hexdigest()
