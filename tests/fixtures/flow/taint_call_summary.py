"""ACE920 via one level of call summary: helper returns wall-clock."""

import json
import time


def stamp():
    return time.time()


def save(out):
    json.dump({"at": stamp()}, out)
