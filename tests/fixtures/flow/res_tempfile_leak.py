"""ACE942: mkstemp fd neither adopted nor closed."""

import tempfile


def scratch_path():
    fd, name = tempfile.mkstemp(suffix=".tmp")
    return name
