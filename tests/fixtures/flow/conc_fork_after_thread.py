"""ACE932: os.fork after a non-daemon thread was started."""

import os
import threading


def work():
    pass


def main():
    helper = threading.Thread(target=work)
    helper.start()
    pid = os.fork()
    helper.join()
    return pid
