"""Clean: disciplined threading — every ACE93x rule satisfied."""

import threading
from concurrent.futures import ThreadPoolExecutor

_STATE = None
_STATE_LOCK = threading.Lock()


def set_state(value):
    global _STATE
    with _STATE_LOCK:
        _STATE = value


def job():
    return 1


def compute():
    with ThreadPoolExecutor(max_workers=2) as pool:
        return pool.submit(job).result()


def compute_finally():
    pool = ThreadPoolExecutor(max_workers=2)
    try:
        return pool.submit(job).result()
    finally:
        pool.shutdown()


def run_joined():
    helper = threading.Thread(target=job)
    helper.start()
    helper.join()


def run_daemon():
    helper = threading.Thread(target=job, daemon=True)
    helper.start()


class Tracker:
    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self.status = "idle"
        self.counts = {}

    def start(self):
        worker = threading.Thread(target=self._loop, daemon=True)
        worker.start()

    def _loop(self):
        with self._lock:
            self.status = "running"
            self.counts["loops"] = self.counts.get("loops", 0) + 1

    def wait_done(self):
        with self._cond:
            self._cond.wait(timeout=1.0)
