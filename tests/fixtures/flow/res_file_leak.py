"""ACE940: file opened outside with and never closed."""


def read_config(path):
    handle = open(path)
    data = handle.read()
    return data
