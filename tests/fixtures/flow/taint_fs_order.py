"""ACE920: unsorted os.listdir order serialized into an artifact."""

import json
import os


def manifest(root, out):
    files = os.listdir(root)
    json.dump({"files": files}, out)
