"""ACE935: read-modify-write of a shared counter without the lock."""

import threading


class Stats:
    def __init__(self, executor):
        self._lock = threading.Lock()
        self.counts = {}
        self._executor = executor

    def start(self):
        self._executor.submit(self._work)

    def _work(self):
        self.counts["done"] = self.counts.get("done", 0) + 1
