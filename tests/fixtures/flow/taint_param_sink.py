"""ACE920 via a parameter sink: tainted arg reaches json.dumps inside
the callee; the finding is reported at the call site."""

import json
import time


def serialize(value):
    return json.dumps({"value": value})


def snapshot():
    return serialize(time.time())
