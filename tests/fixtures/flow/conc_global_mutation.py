"""ACE936: module global reassigned without synchronization."""

_STATE = None


def set_state(value):
    global _STATE
    _STATE = value
