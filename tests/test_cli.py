"""Tests for the command-line entry points."""

import json

import pytest

from repro.cli import compare_main, search_main


class TestSearchMain:
    def test_text_output(self, capsys):
        code = search_main(
            ["--model", "gpt3-350m", "--gpus", "2", "--iterations", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "stage 0" in out

    def test_json_output(self, capsys):
        code = search_main(
            [
                "--model", "gpt3-350m", "--gpus", "2",
                "--iterations", "3", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "gpt3-350m"
        assert payload["throughput_samples_per_s"] > 0

    def test_stage_counts_flag(self, capsys):
        code = search_main(
            [
                "--model", "gpt3-350m", "--gpus", "2",
                "--iterations", "2", "--stage-counts", "2",
            ]
        )
        assert code == 0
        assert "2-stage pipeline" in capsys.readouterr().out

    def test_workers_flag(self, capsys):
        code = search_main(
            [
                "--model", "gpt3-350m", "--gpus", "2",
                "--iterations", "2", "--workers", "2", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["search_workers"] == 2
        assert payload["search_seconds_wall"] > 0
        assert payload["throughput_samples_per_s"] > 0

    def test_bad_model_raises(self):
        with pytest.raises(KeyError):
            search_main(["--model", "bogus-1b", "--iterations", "1"])


class TestEstimateMain:
    def test_roundtrip_with_search(self, tmp_path, capsys):
        from repro.cli import estimate_main, search_main

        plan = tmp_path / "plan.json"
        search_main(
            [
                "--model", "gpt3-350m", "--gpus", "2",
                "--iterations", "2", "--output", str(plan),
            ]
        )
        capsys.readouterr()
        code = estimate_main(
            ["--model", "gpt3-350m", "--gpus", "2", str(plan), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["actual_oom"] is False
        assert payload["throughput_samples_per_s"] > 0

    def test_wrong_cluster_rejected(self, tmp_path, capsys):
        from repro.cli import estimate_main, search_main
        from repro.parallel import ConfigError

        plan = tmp_path / "plan.json"
        search_main(
            [
                "--model", "gpt3-350m", "--gpus", "2",
                "--iterations", "2", "--output", str(plan),
            ]
        )
        capsys.readouterr()
        with pytest.raises(ConfigError):
            estimate_main(
                ["--model", "gpt3-350m", "--gpus", "4", str(plan)]
            )


class TestCompareMain:
    def test_json_output(self, capsys):
        code = compare_main(
            [
                "--model", "gpt3-350m", "--gpus", "2",
                "--iterations", "3", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"megatron", "alpa", "aceso"}
        for stats in payload.values():
            assert stats["throughput"] > 0

    def test_text_table(self, capsys):
        code = compare_main(
            ["--model", "gpt3-350m", "--gpus", "2", "--iterations", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "system" in out
        assert "aceso" in out
