"""Tests for op-level fine-tuning (§4.2)."""

import numpy as np
import pytest

from repro.core import finetune
from repro.core.finetune import _split_points
from repro.parallel import balanced_config, validate_config


class TestSplitPoints:
    def test_sampled_and_sorted(self):
        points = _split_points(100, 8)
        assert points == sorted(points)
        assert len(points) <= 8
        assert points[0] == 0

    def test_single_op_no_points(self):
        assert _split_points(1, 8) == []


class TestFinetune:
    def test_never_worse(self, tiny_graph, small_cluster, tiny_perf_model):
        config = balanced_config(tiny_graph, small_cluster, 2)
        tuned = finetune(
            config, tiny_graph, small_cluster, tiny_perf_model
        )
        assert (
            tiny_perf_model.objective(tuned)
            <= tiny_perf_model.objective(config)
        )
        validate_config(tuned, tiny_graph, small_cluster)

    def test_targets_specific_stage(self, tiny_graph, small_cluster,
                                    tiny_perf_model):
        config = balanced_config(tiny_graph, small_cluster, 2)
        tuned = finetune(
            config, tiny_graph, small_cluster, tiny_perf_model, stages=[0]
        )
        validate_config(tuned, tiny_graph, small_cluster)

    def test_can_flip_partition_dim(self, tiny_graph, small_cluster,
                                    tiny_perf_model):
        """With tp enabled, the dim-flip pass explores option 1 and
        keeps it only on improvement; either way the result is valid
        and not worse."""
        config = balanced_config(tiny_graph, small_cluster, 1, tp=4)
        tuned = finetune(
            config, tiny_graph, small_cluster, tiny_perf_model
        )
        validate_config(tuned, tiny_graph, small_cluster)
        assert (
            tiny_perf_model.objective(tuned)
            <= tiny_perf_model.objective(config)
        )

    def test_suffix_tp_tuning_preserves_validity(
        self, tiny_graph, small_cluster, tiny_perf_model
    ):
        config = balanced_config(tiny_graph, small_cluster, 2,
                                 microbatch_size=4)
        tuned = finetune(
            config, tiny_graph, small_cluster, tiny_perf_model,
            max_split_points=4,
        )
        validate_config(tuned, tiny_graph, small_cluster)
