"""Tests for the primitive extension registry (§3.2.1's extensibility)."""

import numpy as np
import pytest

from repro.core import (
    ApplyContext,
    Granularity,
    PrimitiveSpec,
    Trend,
    all_primitives,
    apply_primitive,
    candidate_groups,
    eligible_primitives,
    get_primitive,
    has_applier,
    identify_bottleneck,
    register_applier,
    register_primitive,
    unregister_applier,
    unregister_primitive,
)
from repro.parallel import balanced_config


@pytest.fixture()
def spec():
    return PrimitiveSpec(
        primitive_id=11,
        name="swap-mbs-x4",
        mechanism="pipeline",
        compute=Trend.DOWN,
        communication=Trend.FLAT,
        memory=Trend.UP,
        granularity=Granularity.MODEL,
    )


@pytest.fixture()
def ctx(tiny_graph, small_cluster, tiny_perf_model):
    config = balanced_config(tiny_graph, small_cluster, 4)
    report = tiny_perf_model.estimate(config)
    return ApplyContext(
        graph=tiny_graph,
        cluster=small_cluster,
        perf_model=tiny_perf_model,
        config=config,
        report=report,
        bottleneck=identify_bottleneck(report),
    )


def quadruple_mbs(ctx):
    """Example extension: jump the microbatch size by 4x at once."""
    mbs = ctx.config.microbatch_size * 4
    if ctx.graph.global_batch_size % mbs:
        return []
    candidate = ctx.config.clone()
    candidate.microbatch_size = mbs
    return [candidate]


@pytest.fixture()
def registered(spec):
    register_primitive(spec)
    register_applier(spec.name, quadruple_mbs)
    yield spec
    unregister_applier(spec.name)
    unregister_primitive(spec.name)


class TestRegistry:
    def test_registered_visible(self, registered):
        assert get_primitive("swap-mbs-x4") is registered
        assert registered in all_primitives()
        assert has_applier("swap-mbs-x4")

    def test_eligibility_includes_extension(self, registered):
        names = [p.name for p in eligible_primitives("compute")]
        assert "swap-mbs-x4" in names

    def test_apply_extension_validates(self, registered, ctx):
        candidates = apply_primitive("swap-mbs-x4", ctx)
        assert len(candidates) == 1
        assert candidates[0].microbatch_size == 4 * ctx.config.microbatch_size

    def test_candidate_groups_pick_up_extension(self, registered, ctx):
        groups = candidate_groups(ctx)
        assert any(g.primitive == "swap-mbs-x4" for g in groups)

    def test_spec_without_applier_skipped(self, spec, ctx):
        register_primitive(spec)
        try:
            # No applier registered: ranking must skip, not crash.
            groups = candidate_groups(ctx)
            assert all(g.primitive != spec.name for g in groups)
            with pytest.raises(KeyError):
                apply_primitive(spec.name, ctx)
        finally:
            unregister_primitive(spec.name)

    def test_duplicate_name_rejected(self, registered, spec):
        with pytest.raises(ValueError):
            register_primitive(spec)
        with pytest.raises(ValueError):
            register_primitive(get_primitive("inc-tp"))

    def test_builtin_protected(self):
        with pytest.raises(ValueError):
            unregister_primitive("inc-tp")
        with pytest.raises(ValueError):
            register_applier("inc-tp", lambda ctx: [])
        with pytest.raises(ValueError):
            unregister_applier("inc-tp")

    def test_unregister_is_idempotent(self, spec):
        unregister_primitive(spec.name)  # not registered: no error
        unregister_applier(spec.name)

    def test_cleanup_after_fixture(self):
        assert len(all_primitives()) == 10
        with pytest.raises(KeyError):
            get_primitive("swap-mbs-x4")
