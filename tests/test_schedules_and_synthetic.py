"""Tests for GPipe scheduling and the synthetic workload generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AcesoSearch, SearchBudget
from repro.ir.models import build_synthetic
from repro.parallel import balanced_config, validate_config
from repro.perfmodel import PerfModel
from repro.profiling import SimulatedProfiler
from repro.runtime import (
    GPIPE,
    ONE_F_ONE_B,
    Executor,
    max_in_flight,
    simulate_pipeline,
    stage_schedule,
)

from conftest import make_tiny_gpt


class TestGPipeSchedule:
    def test_all_forwards_then_backwards(self):
        tasks = stage_schedule(0, 2, 3, style=GPIPE)
        text = [f"{t.direction}{t.microbatch}" for t in tasks]
        assert text == ["F0", "F1", "F2", "B2", "B1", "B0"]

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            stage_schedule(0, 2, 3, style="zigzag")

    def test_gpipe_holds_all_microbatches(self):
        for stage in range(4):
            assert max_in_flight(stage, 4, 16, style=GPIPE) == 16

    def test_gpipe_simulation_no_deadlock(self):
        result = simulate_pipeline(
            [1.0] * 4, [2.0] * 4, 8, style=GPIPE
        )
        assert result.makespan > 0

    def test_gpipe_bubbles_exceed_1f1b(self):
        """The classic result: 1F1B and GPipe share the warmup bubble,
        but GPipe pays it per phase."""
        f1b = simulate_pipeline([1.0] * 4, [2.0] * 4, 8, style=ONE_F_ONE_B)
        gpipe = simulate_pipeline([1.0] * 4, [2.0] * 4, 8, style=GPIPE)
        assert gpipe.makespan >= f1b.makespan

    def test_executor_gpipe_memory_higher(self, tiny_graph, small_cluster):
        config = balanced_config(tiny_graph, small_cluster, 4)
        f1b = Executor(tiny_graph, small_cluster, seed=0).run(config)
        gpipe = Executor(
            tiny_graph, small_cluster, seed=0, schedule_style=GPIPE
        ).run(config)
        # Holding every microbatch's activations costs memory...
        assert gpipe.max_memory > f1b.max_memory
        # ...and the schedule is never faster.
        assert gpipe.iteration_time >= f1b.iteration_time * 0.99

    def test_executor_style_validated(self, tiny_graph, small_cluster):
        with pytest.raises(ValueError):
            Executor(tiny_graph, small_cluster, schedule_style="bogus")


class TestSyntheticGenerator:
    def test_deterministic_per_seed(self):
        a = build_synthetic(40, seed=5)
        b = build_synthetic(40, seed=5)
        assert [op.name for op in a.ops] == [op.name for op in b.ops]
        assert a.total_params == b.total_params

    def test_seeds_differ(self):
        a = build_synthetic(40, seed=5)
        b = build_synthetic(40, seed=6)
        assert a.total_fwd_flops_per_sample != b.total_fwd_flops_per_sample

    def test_size_control(self):
        assert build_synthetic(10).num_ops == 10
        assert build_synthetic(100).num_ops == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            build_synthetic(1)
        with pytest.raises(ValueError):
            build_synthetic(10, hidden_range=(64, 32))

    def test_ends_with_loss(self):
        graph = build_synthetic(20, seed=1)
        assert graph.ops[-1].kind == "loss"


class TestSearchFuzzing:
    """The planner must handle arbitrary well-formed graphs."""

    @given(
        num_ops=st.integers(8, 48),
        seed=st.integers(0, 50),
        stages=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=8, deadline=None)
    def test_search_valid_on_random_graphs(self, num_ops, seed, stages):
        from repro.cluster import paper_cluster

        graph = build_synthetic(num_ops, seed=seed)
        cluster = paper_cluster(4)
        database = SimulatedProfiler(cluster, seed=0).profile(graph)
        perf_model = PerfModel(graph, cluster, database)
        stages = min(stages, graph.num_ops)
        init = balanced_config(graph, cluster, stages)
        search = AcesoSearch(graph, cluster, perf_model)
        result = search.run(init, SearchBudget(max_iterations=3))
        validate_config(result.best_config, graph, cluster)
        assert result.best_objective <= perf_model.objective(init)
