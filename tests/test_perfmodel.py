"""Tests for repro.perfmodel: memory, timing, reports, the model."""

import numpy as np
import pytest

from repro.cluster import paper_cluster
from repro.parallel import balanced_config
from repro.perfmodel import (
    PerfModel,
    activation_kept_mask,
    allocator_reserve,
    in_flight_counts,
    iteration_time_1f1b,
    stage_peak_memory,
    stage_totals,
)
from repro.perfmodel.memory import RESERVE_SAFETY_FACTOR

from conftest import make_tiny_gpt


class TestMemoryFormulas:
    def test_in_flight_counts(self):
        np.testing.assert_array_equal(
            in_flight_counts(4, 100), [4, 3, 2, 1]
        )

    def test_in_flight_capped_by_microbatches(self):
        np.testing.assert_array_equal(in_flight_counts(4, 2), [2, 2, 2, 1])

    def test_in_flight_validation(self):
        with pytest.raises(ValueError):
            in_flight_counts(0, 1)

    def test_kept_mask_no_recompute(self):
        rc = np.zeros(4, dtype=bool)
        sid = np.zeros(4, dtype=np.int64)
        np.testing.assert_array_equal(
            activation_kept_mask(rc, sid), [1, 1, 1, 1]
        )

    def test_kept_mask_segment_keeps_first(self):
        rc = np.array([False, True, True, False])
        sid = np.zeros(4, dtype=np.int64)
        np.testing.assert_array_equal(
            activation_kept_mask(rc, sid), [1, 1, 0, 1]
        )

    def test_kept_mask_resets_at_stage_boundary(self):
        rc = np.array([True, True, True, True])
        sid = np.array([0, 0, 1, 1])
        # Each stage's first recomputed op is a checkpoint.
        np.testing.assert_array_equal(
            activation_kept_mask(rc, sid), [1, 0, 1, 0]
        )

    def test_kept_mask_shape_mismatch(self):
        with pytest.raises(ValueError):
            activation_kept_mask(
                np.zeros(3, dtype=bool), np.zeros(4, dtype=np.int64)
            )

    def test_allocator_reserve_per_stage_max(self):
        from repro.perfmodel.memory import ALLOCATOR_BLOCK_BYTES as BLOCK

        transient = np.array([1.0, 5.0, 2.0, 7.0]) * BLOCK
        starts = np.array([0, 2])
        np.testing.assert_allclose(
            allocator_reserve(transient, starts),
            np.array([5.0, 7.0]) * BLOCK * RESERVE_SAFETY_FACTOR,
        )

    def test_allocator_reserve_rounds_to_blocks(self):
        from repro.perfmodel.memory import ALLOCATOR_BLOCK_BYTES as BLOCK

        tiny = np.array([100.0, 1.0])  # far below one block
        starts = np.array([0])
        np.testing.assert_allclose(
            allocator_reserve(tiny, starts),
            [BLOCK * RESERVE_SAFETY_FACTOR],
        )

    def test_allocator_reserve_empty_raises(self):
        with pytest.raises(ValueError):
            allocator_reserve(np.array([]), np.array([0]))

    def test_stage_peak_memory_formula(self):
        assert stage_peak_memory(10, 20, 5, 3, 7) == 10 + 20 + 15 + 7


class TestTimingFormulas:
    def test_homogeneous_matches_closed_form(self):
        """p equal stages: T = (p - 1)(f + b) + N (f + b)."""
        p, n, f, b = 4, 16, 2.0, 3.0
        total = iteration_time_1f1b([f] * p, [b] * p, n)
        assert total == pytest.approx((p - 1) * (f + b) + n * (f + b))

    def test_single_stage(self):
        assert iteration_time_1f1b([2.0], [3.0], 10) == pytest.approx(50.0)

    def test_slow_stage_dominates(self):
        fast = iteration_time_1f1b([1.0, 1.0], [1.0, 1.0], 8)
        slow = iteration_time_1f1b([1.0, 5.0], [1.0, 5.0], 8)
        assert slow > fast

    def test_dp_sync_added(self):
        base = stage_totals([1.0, 1.0], [1.0, 1.0], 4)
        synced = stage_totals([1.0, 1.0], [1.0, 1.0], 4, [0.5, 0.0])
        assert synced[0] == base[0] + 0.5
        assert synced[1] == base[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            stage_totals([1.0], [1.0, 2.0], 4)
        with pytest.raises(ValueError):
            stage_totals([1.0], [1.0], 0)
        with pytest.raises(ValueError):
            stage_totals([1.0], [1.0], 2, [0.1, 0.2])


class TestPerfModel:
    def test_estimate_structure(self, tiny_perf_model, tiny_config):
        report = tiny_perf_model.estimate(tiny_config)
        assert report.num_stages == tiny_config.num_stages
        assert report.iteration_time > 0
        assert report.num_microbatches == 32 // tiny_config.microbatch_size

    def test_estimate_cached(self, tiny_perf_model, tiny_config):
        before = tiny_perf_model.num_estimates
        r1 = tiny_perf_model.estimate(tiny_config)
        r2 = tiny_perf_model.estimate(tiny_config.clone())
        assert r1 is r2
        assert tiny_perf_model.num_estimates <= before + 1

    def test_more_devices_is_faster(self, tiny_graph, tiny_database):
        small = PerfModel(tiny_graph, paper_cluster(1), _db_for(
            tiny_graph, paper_cluster(1)))
        big = PerfModel(tiny_graph, paper_cluster(4), tiny_database)
        t1 = small.estimate(
            balanced_config(tiny_graph, paper_cluster(1), 1)
        ).iteration_time
        t4 = big.estimate(
            balanced_config(tiny_graph, paper_cluster(4), 1)
        ).iteration_time
        assert t4 < t1

    def test_recompute_increases_time_reduces_memory(
        self, tiny_perf_model, tiny_config
    ):
        plain = tiny_perf_model.estimate(tiny_config)
        rc = tiny_config.clone()
        for stage in rc.stages:
            stage.recompute[:] = True
        recomputed = tiny_perf_model.estimate(rc)
        assert recomputed.iteration_time > plain.iteration_time
        for a, b in zip(recomputed.stages, plain.stages):
            assert a.activation_bytes_mb < b.activation_bytes_mb

    def test_tp_adds_communication(self, tiny_graph, tiny_perf_model,
                                   small_cluster):
        base = balanced_config(tiny_graph, small_cluster, 1)
        tp = balanced_config(tiny_graph, small_cluster, 1, tp=4)
        r_base = tiny_perf_model.estimate(base)
        r_tp = tiny_perf_model.estimate(tp)
        assert r_tp.stages[0].tp_comm_time_mb > r_base.stages[0].tp_comm_time_mb

    def test_earlier_stages_hold_more_activation(
        self, tiny_graph, tiny_perf_model, small_cluster
    ):
        config = balanced_config(tiny_graph, small_cluster, 4)
        report = tiny_perf_model.estimate(config)
        in_flights = [s.in_flight for s in report.stages]
        assert in_flights == [4, 3, 2, 1]

    def test_objective_oom_penalized(self, tiny_perf_model, tiny_config):
        feasible = tiny_perf_model.objective(tiny_config)
        assert feasible < PerfModel.OOM_PENALTY

    def test_reshard_cost_for_mixed_layout(self, tiny_graph, small_cluster,
                                           tiny_perf_model):
        config = balanced_config(tiny_graph, small_cluster, 1, tp=2)
        mixed = config.clone()
        half = mixed.stages[0].num_ops // 2
        mixed.stages[0].tp[half:] = 4
        mixed.stages[0].dp[half:] = 1
        uniform_report = tiny_perf_model.estimate(config)
        mixed_report = tiny_perf_model.estimate(mixed)
        assert mixed_report.stages[0].reshard_time_mb > 0
        assert uniform_report.stages[0].reshard_time_mb == 0


def _db_for(graph, cluster):
    from repro.profiling import SimulatedProfiler

    return SimulatedProfiler(cluster, seed=0).profile(graph)


class TestPerfReport:
    def test_resource_proportions_sum_to_one(
        self, tiny_perf_model, tiny_config
    ):
        report = tiny_perf_model.estimate(tiny_config)
        for name in ("compute", "communication", "memory"):
            total = sum(
                report.resource_proportions(i)[name]
                for i in range(report.num_stages)
            )
            assert total == pytest.approx(1.0)

    def test_throughput(self, tiny_perf_model, tiny_config, tiny_graph):
        report = tiny_perf_model.estimate(tiny_config)
        thpt = report.throughput(tiny_graph.global_batch_size)
        assert thpt == pytest.approx(
            tiny_graph.global_batch_size / report.iteration_time
        )

    def test_oom_flags(self, tiny_perf_model, tiny_config):
        report = tiny_perf_model.estimate(tiny_config)
        assert not report.is_oom
        assert report.oom_stages == []
        assert report.max_memory <= report.memory_limit
