"""Tests for repro.parallel.validation."""

import numpy as np
import pytest

from repro.cluster import paper_cluster
from repro.parallel import (
    ConfigError,
    ParallelConfig,
    StageConfig,
    balanced_config,
    is_valid,
    validate_config,
)

from conftest import make_tiny_gpt


@pytest.fixture()
def graph():
    return make_tiny_gpt()


@pytest.fixture()
def cluster():
    return paper_cluster(4)


def good_config(graph):
    n = graph.num_ops
    return ParallelConfig(
        stages=[
            StageConfig.uniform(0, n // 2, 2, tp=1),
            StageConfig.uniform(n // 2, n, 2, tp=2),
        ],
        microbatch_size=2,
    )


class TestValidateConfig:
    def test_valid_passes(self, graph, cluster):
        validate_config(good_config(graph), graph, cluster)

    def test_balanced_init_valid(self, graph, cluster):
        for stages in (1, 2, 4):
            validate_config(
                balanced_config(graph, cluster, stages), graph, cluster
            )

    def test_gap_in_spans(self, graph, cluster):
        config = good_config(graph)
        config.stages[1].start += 1
        config.stages[1].tp = config.stages[1].tp[1:]
        config.stages[1].dp = config.stages[1].dp[1:]
        config.stages[1].tp_dim = config.stages[1].tp_dim[1:]
        config.stages[1].recompute = config.stages[1].recompute[1:]
        with pytest.raises(ConfigError, match="starts at op"):
            validate_config(config, graph, cluster)

    def test_incomplete_coverage(self, graph, cluster):
        n = graph.num_ops
        config = ParallelConfig(
            stages=[StageConfig.uniform(0, n - 1, 4)], microbatch_size=4
        )
        with pytest.raises(ConfigError, match="cover"):
            validate_config(config, graph, cluster)

    def test_wrong_device_total(self, graph, cluster):
        n = graph.num_ops
        config = ParallelConfig(
            stages=[StageConfig.uniform(0, n, 2)], microbatch_size=2
        )
        with pytest.raises(ConfigError, match="devices"):
            validate_config(config, graph, cluster)

    def test_tp_dp_product_mismatch(self, graph, cluster):
        config = good_config(graph)
        config.stages[0].tp[0] = 2  # tp*dp becomes 4 != 2
        with pytest.raises(ConfigError, match="tp \\* dp"):
            validate_config(config, graph, cluster)

    def test_non_pow2_degree(self, graph, cluster):
        config = good_config(graph)
        config.stages[0].tp[:] = 0
        with pytest.raises(ConfigError):
            validate_config(config, graph, cluster)

    def test_tp_dim_out_of_range(self, graph, cluster):
        config = good_config(graph)
        config.stages[0].tp_dim[:] = 99
        with pytest.raises(ConfigError, match="partition options"):
            validate_config(config, graph, cluster)

    def test_negative_tp_dim(self, graph, cluster):
        config = good_config(graph)
        config.stages[0].tp_dim[0] = -1
        with pytest.raises(ConfigError, match="negative"):
            validate_config(config, graph, cluster)

    def test_microbatch_not_dividing_batch(self, graph, cluster):
        config = good_config(graph)
        config.microbatch_size = 3
        with pytest.raises(ConfigError, match="microbatch"):
            validate_config(config, graph, cluster)

    def test_microbatch_not_divisible_by_dp(self, graph, cluster):
        config = good_config(graph)
        config.microbatch_size = 1  # stage 0 has dp=2
        with pytest.raises(ConfigError, match="divisible"):
            validate_config(config, graph, cluster)

    def test_is_valid_wrapper(self, graph, cluster):
        assert is_valid(good_config(graph), graph, cluster)
        bad = good_config(graph)
        bad.microbatch_size = 3
        assert not is_valid(bad, graph, cluster)
