"""Cross-checks between the executor and the performance model.

Exp#8/9 in miniature, plus failure-injection around the executor's
noise and overhead modelling.
"""

import numpy as np
import pytest

from repro.parallel import balanced_config
from repro.perfmodel import PerfModel
from repro.profiling import SimulatedProfiler
from repro.runtime import Executor, FRAMEWORK_OVERHEAD

from conftest import make_tiny_gpt


class TestPredictionConsistency:
    @pytest.mark.parametrize("stages,tp,mbs", [
        (1, 1, 4), (2, 1, 2), (4, 1, 1), (1, 4, 4), (2, 2, 4),
    ])
    def test_time_error_bounded_across_configs(
        self, tiny_graph, small_cluster, tiny_perf_model, tiny_executor,
        stages, tp, mbs,
    ):
        config = balanced_config(
            tiny_graph, small_cluster, stages, tp=tp, microbatch_size=mbs
        )
        predicted = tiny_perf_model.estimate(config).iteration_time
        actual = tiny_executor.run(config).iteration_time
        assert abs(predicted - actual) / actual < 0.25

    @pytest.mark.parametrize("stages", [1, 2, 4])
    def test_memory_never_badly_underestimated(
        self, tiny_graph, small_cluster, tiny_perf_model, tiny_executor,
        stages,
    ):
        """At tiny-model scale the 2MB allocator granularity makes the
        over/under sign noisy; the safety property that matters is a
        bounded under-estimate (the realistic-scale bias is asserted by
        bench_fig16)."""
        config = balanced_config(tiny_graph, small_cluster, stages)
        report = tiny_perf_model.estimate(config)
        run = tiny_executor.run(config)
        for p, a in zip(report.peak_memories, run.stage_peak_memory):
            assert p >= 0.9 * a

    def test_model_ranking_survives_execution(
        self, tiny_graph, small_cluster, tiny_perf_model, tiny_executor
    ):
        """If the model says A is clearly faster than B, the executor
        agrees — the property the whole search relies on."""
        fast = balanced_config(tiny_graph, small_cluster, 2)
        slow = balanced_config(tiny_graph, small_cluster, 2,
                               microbatch_size=2)
        slow.stages[0].recompute[:] = True
        slow.stages[1].recompute[:] = True
        p_fast = tiny_perf_model.estimate(fast).iteration_time
        p_slow = tiny_perf_model.estimate(slow).iteration_time
        assert p_slow > p_fast * 1.1  # clearly distinguished
        a_fast = tiny_executor.run(fast).iteration_time
        a_slow = tiny_executor.run(slow).iteration_time
        assert a_slow > a_fast


class TestExecutorNoiseModel:
    def test_zero_noise_still_carries_overhead(self, tiny_graph,
                                               small_cluster,
                                               tiny_perf_model):
        config = balanced_config(tiny_graph, small_cluster, 2)
        quiet = Executor(tiny_graph, small_cluster, noise=0.0)
        predicted = tiny_perf_model.estimate(config).iteration_time
        actual = quiet.run(config).iteration_time
        # Without noise the gap is (almost exactly) the framework
        # overhead plus the simulator's true-bubble correction.
        assert actual > predicted
        assert actual < predicted * (1 + FRAMEWORK_OVERHEAD + 0.1)

    def test_different_seeds_different_measurements(self, tiny_graph,
                                                    small_cluster):
        config = balanced_config(tiny_graph, small_cluster, 2)
        a = Executor(tiny_graph, small_cluster, seed=1).run(config)
        b = Executor(tiny_graph, small_cluster, seed=2).run(config)
        assert a.iteration_time != b.iteration_time

    def test_noise_magnitude_bounded(self, tiny_graph, small_cluster):
        config = balanced_config(tiny_graph, small_cluster, 2)
        times = [
            Executor(tiny_graph, small_cluster, seed=s).run(config)
            .iteration_time
            for s in range(5)
        ]
        spread = (max(times) - min(times)) / min(times)
        assert spread < 0.10


class TestBubbleAccounting:
    def test_deep_pipelines_pay_bubbles(self, small_cluster):
        """More stages on a fixed device count => larger bubble share
        when the microbatch count is small."""
        graph = make_tiny_gpt(batch_size=32)
        db = SimulatedProfiler(small_cluster, seed=0).profile(graph)
        executor = Executor(graph, small_cluster, seed=0)
        shallow = balanced_config(graph, small_cluster, 2,
                                  microbatch_size=8)
        deep = balanced_config(graph, small_cluster, 4, microbatch_size=8)
        assert (
            executor.run(deep).bubble_fraction
            > executor.run(shallow).bubble_fraction
        )
