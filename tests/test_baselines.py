"""Tests for the baseline systems."""

import numpy as np
import pytest

from repro.baselines import (
    AlpaCompilationError,
    AlpaOptions,
    DPSolverOptions,
    MegatronPlan,
    alpa_search,
    dp_solve,
    enumerate_plans,
    megatron_grid_search,
    plan_to_config,
    random_search,
)
from repro.core import SearchBudget
from repro.parallel import balanced_config, validate_config

from conftest import make_tiny_gpt


class TestMegatron:
    def test_enumerate_plans_structure(self, tiny_graph, small_cluster):
        plans = enumerate_plans(tiny_graph, small_cluster)
        assert plans
        for plan in plans:
            assert plan.tp * plan.dp * plan.pp == small_cluster.num_gpus
            assert (
                tiny_graph.global_batch_size % plan.aggregated_microbatch == 0
            )

    def test_plan_to_config_valid(self, tiny_graph, small_cluster):
        plan = MegatronPlan(tp=2, dp=1, pp=2, microbatch_per_gpu=2,
                            recompute=True)
        config = plan_to_config(plan, tiny_graph, small_cluster)
        validate_config(config, tiny_graph, small_cluster)
        assert config.num_stages == 2
        assert all(s.recompute.all() for s in config.stages)

    def test_plan_to_config_rejects_mismatch(self, tiny_graph,
                                             small_cluster):
        plan = MegatronPlan(tp=4, dp=2, pp=2, microbatch_per_gpu=1,
                            recompute=False)
        assert plan_to_config(plan, tiny_graph, small_cluster) is None

    def test_grid_search_finds_feasible(self, tiny_graph, small_cluster,
                                        tiny_perf_model):
        result = megatron_grid_search(
            tiny_graph, small_cluster, tiny_perf_model
        )
        assert result.best_config is not None
        assert result.best_objective < float("inf")
        assert result.evaluated == len(result.table)
        validate_config(result.best_config, tiny_graph, small_cluster)

    def test_global_settings_only(self, tiny_graph, small_cluster,
                                  tiny_perf_model):
        """Megatron's space has one (tp, dp) everywhere — no per-op mix."""
        result = megatron_grid_search(
            tiny_graph, small_cluster, tiny_perf_model
        )
        config = result.best_config
        tps = {int(t) for s in config.stages for t in np.unique(s.tp)}
        assert len(tps) == 1


class TestAlpa:
    def test_search_finds_feasible(self, tiny_graph, small_cluster,
                                   tiny_perf_model):
        result = alpa_search(tiny_graph, small_cluster, tiny_perf_model)
        assert result.best_config is not None
        validate_config(result.best_config, tiny_graph, small_cluster)
        assert result.compilations > 0
        assert result.simulated_search_seconds > 0

    def test_simulated_cost_scales_with_compilations(
        self, tiny_graph, small_cluster, tiny_perf_model
    ):
        cheap = alpa_search(
            tiny_graph, small_cluster, tiny_perf_model,
            options=AlpaOptions(per_compile_seconds=0.01),
        )
        pricey = alpa_search(
            tiny_graph, small_cluster, tiny_perf_model,
            options=AlpaOptions(per_compile_seconds=1.0),
        )
        assert pricey.simulated_search_seconds > cheap.simulated_search_seconds

    def test_compilation_failure_above_threshold(self, small_cluster,
                                                 tiny_perf_model):
        graph = make_tiny_gpt(num_layers=8)
        from repro.profiling import SimulatedProfiler
        from repro.perfmodel import PerfModel

        db = SimulatedProfiler(small_cluster, seed=0).profile(graph)
        pm = PerfModel(graph, small_cluster, db)
        with pytest.raises(AlpaCompilationError):
            alpa_search(
                graph, small_cluster, pm,
                options=AlpaOptions(max_supported_layers=4),
            )

    def test_model_wide_recompute_only(self, tiny_graph, small_cluster,
                                       tiny_perf_model):
        """Alpa's recompute flag is all-or-nothing per model."""
        result = alpa_search(tiny_graph, small_cluster, tiny_perf_model)
        flags = {
            bool(s.recompute.all()) or not bool(s.recompute.any())
            for s in result.best_config.stages
        }
        assert flags == {True}


class TestDPSolver:
    @pytest.fixture(scope="class")
    def dp_result(self, tiny_graph, small_cluster, tiny_perf_model):
        options = DPSolverOptions(
            microbatch_sizes=[2, 4], max_stages=4, unit="layer"
        )
        return dp_solve(
            tiny_graph, small_cluster, tiny_perf_model, options=options
        )

    def test_finds_feasible(self, dp_result, tiny_graph, small_cluster):
        assert dp_result.best_config is not None
        validate_config(dp_result.best_config, tiny_graph, small_cluster)

    def test_explored_configs_counted(self, dp_result):
        assert dp_result.explored_configs > 0
        assert dp_result.table_evaluations > 0

    def test_dp_explores_more_than_aceso(
        self, tiny_graph, small_cluster, tiny_perf_model
    ):
        """Exp#4's headline: at op granularity the DP's recurrence
        covers orders of magnitude more configurations than Aceso
        estimates."""
        from repro.core import AcesoSearch

        op_dp = dp_solve(
            tiny_graph, small_cluster, tiny_perf_model,
            options=DPSolverOptions(
                microbatch_sizes=[2, 4], max_stages=4, unit="op"
            ),
        )
        before = tiny_perf_model.num_estimates
        search = AcesoSearch(tiny_graph, small_cluster, tiny_perf_model)
        search.run(
            balanced_config(tiny_graph, small_cluster, 2),
            SearchBudget(max_iterations=8),
        )
        aceso_estimates = tiny_perf_model.num_estimates - before
        assert op_dp.explored_configs > 10 * aceso_estimates

    def test_dp_quality_close_to_aceso(
        self, dp_result, tiny_graph, small_cluster, tiny_perf_model
    ):
        from repro.core import search_all_stage_counts

        multi = search_all_stage_counts(
            tiny_graph, small_cluster, tiny_perf_model,
            budget_per_count={"max_iterations": 10},
        )
        # Same ballpark (paper: identical or Aceso slightly better).
        assert multi.best.best_objective <= dp_result.best_objective * 1.2

    def test_op_unit_mode(self, tiny_graph, small_cluster, tiny_perf_model):
        options = DPSolverOptions(
            microbatch_sizes=[4], max_stages=2, unit="op"
        )
        result = dp_solve(
            tiny_graph, small_cluster, tiny_perf_model, options=options
        )
        assert result.best_config is not None

    def test_bad_unit_raises(self, tiny_graph, small_cluster,
                             tiny_perf_model):
        with pytest.raises(ValueError):
            dp_solve(
                tiny_graph, small_cluster, tiny_perf_model,
                options=DPSolverOptions(unit="block"),
            )


class TestRandomSearch:
    def test_runs_and_improves(self, tiny_graph, small_cluster,
                               tiny_perf_model):
        init = balanced_config(tiny_graph, small_cluster, 4)
        result = random_search(
            tiny_graph, small_cluster, tiny_perf_model, init,
            SearchBudget(max_iterations=4), seed=1,
        )
        assert result.best_objective <= tiny_perf_model.objective(init)

    def test_seeds_differ(self, tiny_graph, small_cluster, tiny_perf_model):
        init = balanced_config(tiny_graph, small_cluster, 4)
        runs = [
            random_search(
                tiny_graph, small_cluster, tiny_perf_model, init,
                SearchBudget(max_iterations=3), seed=s,
            )
            for s in (1, 2)
        ]
        # Different shuffles should at least both terminate; traces may
        # legitimately coincide on tiny models, so only check liveness.
        assert all(r.trace.num_iterations >= 1 for r in runs)
