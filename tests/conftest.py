"""Shared fixtures: tiny models and clusters that keep tests fast."""

from __future__ import annotations

import pytest

from repro.cluster import paper_cluster
from repro.ir.models.gpt3 import GPTSpec, build_gpt
from repro.parallel import balanced_config
from repro.perfmodel import PerfModel
from repro.profiling import SimulatedProfiler
from repro.runtime import Executor


def make_tight_cluster(num_gpus: int = 4, memory_mb: float = 64):
    """A cluster whose devices are small enough to force OOM handling."""
    from repro.cluster import ClusterSpec, DeviceSpec

    device = DeviceSpec(
        name=f"tiny-{memory_mb}MB",
        memory_bytes=int(memory_mb * 1024 * 1024),
    )
    return ClusterSpec(num_nodes=1, gpus_per_node=num_gpus, device=device)


def make_tiny_gpt(num_layers: int = 4, batch_size: int = 32):
    """A miniature GPT whose profiling/estimation is near-instant."""
    spec = GPTSpec(
        num_layers=num_layers,
        hidden=64,
        num_heads=4,
        seq_len=32,
        vocab_size=512,
    )
    return build_gpt(
        f"tiny-gpt-{num_layers}l", spec, batch_size=batch_size
    )


def make_activation_heavy_gpt(num_layers: int = 6, batch_size: int = 64):
    """A tiny GPT whose *activations* dominate memory.

    Paired with :func:`make_tight_cluster` it produces configurations
    that genuinely run out of memory unless recomputation kicks in —
    the scenario the inc-rc machinery exists for.
    """
    spec = GPTSpec(
        num_layers=num_layers,
        hidden=128,
        num_heads=4,
        seq_len=256,
        vocab_size=512,
    )
    return build_gpt(
        f"heavy-gpt-{num_layers}l", spec, batch_size=batch_size
    )


@pytest.fixture(scope="session")
def tiny_graph():
    return make_tiny_gpt()


@pytest.fixture(scope="session")
def small_cluster():
    return paper_cluster(4)


@pytest.fixture(scope="session")
def tiny_database(tiny_graph, small_cluster):
    return SimulatedProfiler(small_cluster, seed=0).profile(tiny_graph)


@pytest.fixture(scope="session")
def tiny_perf_model(tiny_graph, small_cluster, tiny_database):
    return PerfModel(tiny_graph, small_cluster, tiny_database)


@pytest.fixture(scope="session")
def tiny_executor(tiny_graph, small_cluster):
    return Executor(tiny_graph, small_cluster, seed=0)


@pytest.fixture()
def tiny_config(tiny_graph, small_cluster):
    return balanced_config(tiny_graph, small_cluster, 2)
