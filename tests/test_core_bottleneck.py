"""Tests for Heuristic-1 bottleneck identification."""

import pytest

from repro.core import identify_bottleneck, rank_bottlenecks
from repro.parallel import balanced_config
from repro.perfmodel.report import PerfReport, StageReport


def _stage(fwd=1.0, bwd=2.0, weights=1e9, act=1e8, in_flight=1,
           dp_sync=0.0):
    return StageReport(
        fwd_time_mb=fwd,
        bwd_time_mb=bwd,
        recompute_time_mb=0.0,
        tp_comm_time_mb=0.0,
        reshard_time_mb=0.0,
        p2p_time_mb=0.0,
        dp_sync_time=dp_sync,
        weight_bytes=weights,
        optimizer_bytes=0.0,
        activation_bytes_mb=act,
        in_flight=in_flight,
        reserved_bytes=0.0,
    )


def _report(stages, limit=32e9, num_microbatches=4):
    return PerfReport(
        stages=tuple(stages),
        num_microbatches=num_microbatches,
        iteration_time=1.0,
        memory_limit=limit,
    )


class TestHeuristic1:
    def test_slowest_stage_wins_when_feasible(self):
        report = _report([_stage(fwd=1.0), _stage(fwd=5.0), _stage(fwd=2.0)])
        assert identify_bottleneck(report).stage == 1

    def test_oom_overrides_time(self):
        report = _report(
            [_stage(fwd=9.0, weights=1e9), _stage(fwd=1.0, weights=40e9)]
        )
        bottleneck = identify_bottleneck(report)
        assert bottleneck.stage == 1
        assert bottleneck.is_oom
        assert bottleneck.primary_resource == "memory"

    def test_oom_ranks_all_by_memory(self):
        report = _report(
            [_stage(weights=40e9), _stage(weights=50e9), _stage(weights=1e9)]
        )
        ranked = rank_bottlenecks(report)
        assert [b.stage for b in ranked] == [1, 0, 2]

    def test_feasible_ranks_by_time(self):
        report = _report([_stage(fwd=3.0), _stage(fwd=1.0), _stage(fwd=2.0)])
        assert [b.stage for b in rank_bottlenecks(report)] == [0, 2, 1]

    def test_resources_ordered_by_proportion(self):
        # Stage 0 dominates compute; its first resource should be
        # compute (no OOM anywhere).
        report = _report([_stage(fwd=50.0), _stage(fwd=1.0)])
        bottleneck = identify_bottleneck(report)
        assert bottleneck.primary_resource == "compute"

    def test_real_model_bottleneck(self, tiny_perf_model, tiny_graph,
                                   small_cluster):
        config = balanced_config(tiny_graph, small_cluster, 4)
        report = tiny_perf_model.estimate(config)
        ranked = rank_bottlenecks(report)
        assert len(ranked) == 4
        times = report.stage_times()
        assert times[ranked[0].stage] == max(times)
