"""Tests for the ASCII plotting helpers."""

import pytest

from repro.analysis import ascii_bar_chart, ascii_line_plot, downsample


class TestLinePlot:
    def test_contains_markers_and_labels(self):
        art = ascii_line_plot(
            {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]},
            title="curves", width=20, height=6,
        )
        assert "curves" in art
        assert "*" in art and "o" in art
        assert "a" in art and "b" in art
        assert "3" in art and "1" in art  # axis annotations

    def test_flat_series_ok(self):
        art = ascii_line_plot({"flat": [5.0, 5.0, 5.0]})
        assert "*" in art

    def test_none_values_skipped(self):
        art = ascii_line_plot({"gap": [1.0, None, 3.0]})
        plot_only = art.rsplit("\n", 1)[0]  # drop the legend line
        assert plot_only.count("*") == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_line_plot({})
        with pytest.raises(ValueError):
            ascii_line_plot({"one": [1.0]})
        with pytest.raises(ValueError):
            ascii_line_plot({"none": [None, None]})


class TestBarChart:
    def test_longest_bar_is_peak(self):
        art = ascii_bar_chart(["x", "yy"], [1.0, 2.0], width=10)
        lines = art.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_zero_values(self):
        art = ascii_bar_chart(["a"], [0.0])
        assert "0.00" in art

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            ascii_bar_chart([], [])


class TestDownsample:
    def test_short_series_unchanged(self):
        xs, ys = downsample([1, 2], [3, 4], 10)
        assert xs == [1, 2] and ys == [3, 4]

    def test_keeps_endpoints(self):
        xs, ys = downsample(list(range(100)), list(range(100)), 5)
        assert xs[0] == 0 and xs[-1] == 99
        assert len(xs) <= 6

    def test_validation(self):
        with pytest.raises(ValueError):
            downsample([1], [1, 2], 4)
        with pytest.raises(ValueError):
            downsample([1, 2], [1, 2], 1)
