"""Tests for repro.parallel.config."""

import numpy as np
import pytest

from repro.parallel import ParallelConfig, StageConfig


def two_stage_config():
    return ParallelConfig(
        stages=[
            StageConfig.uniform(0, 4, 2, tp=2),
            StageConfig.uniform(4, 10, 2, tp=1),
        ],
        microbatch_size=4,
    )


class TestStructure:
    def test_basics(self):
        config = two_stage_config()
        assert config.num_stages == 2
        assert config.num_ops == 10
        assert config.total_devices == 4

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ParallelConfig(stages=[])

    def test_bad_microbatch_raises(self):
        with pytest.raises(ValueError):
            ParallelConfig(
                stages=[StageConfig.uniform(0, 2, 1)], microbatch_size=0
            )

    def test_num_microbatches(self):
        config = two_stage_config()
        assert config.num_microbatches(64) == 16
        with pytest.raises(ValueError):
            config.num_microbatches(63)

    def test_stage_of_op(self):
        config = two_stage_config()
        assert config.stage_of_op(0) == 0
        assert config.stage_of_op(4) == 1
        assert config.stage_of_op(9) == 1
        with pytest.raises(IndexError):
            config.stage_of_op(10)

    def test_stage_first_device(self):
        config = two_stage_config()
        assert config.stage_first_device(0) == 0
        assert config.stage_first_device(1) == 2


class TestIdentity:
    def test_clone_independent(self):
        config = two_stage_config()
        copy = config.clone()
        copy.stages[0].tp[0] = 1
        assert config.stages[0].tp[0] == 2

    def test_signature_equal_for_equal_configs(self):
        assert two_stage_config().signature() == two_stage_config().signature()

    def test_signature_differs_on_microbatch(self):
        a = two_stage_config()
        b = two_stage_config()
        b.microbatch_size = 8
        assert a.signature() != b.signature()

    def test_signature_differs_on_op_setting(self):
        a = two_stage_config()
        b = two_stage_config()
        b.stages[1].recompute[0] = True
        assert a.signature() != b.signature()

    def test_clone_drops_signature_cache(self):
        config = two_stage_config()
        sig = config.signature()
        copy = config.clone()
        copy.stages[0].tp_dim[0] = 1
        assert copy.signature() != sig

    def test_cache_key_equal_for_equal_configs(self):
        assert two_stage_config().cache_key() == two_stage_config().cache_key()

    def test_cache_key_differs_on_microbatch(self):
        a = two_stage_config()
        b = two_stage_config()
        b.microbatch_size = 8
        assert a.cache_key() != b.cache_key()

    def test_cache_key_differs_on_op_setting(self):
        a = two_stage_config()
        b = two_stage_config()
        b.stages[1].recompute[0] = True
        assert a.cache_key() != b.cache_key()

    def test_cache_key_tracks_signature_equality(self):
        # cache_key is the perf-model's fast stand-in for signature():
        # the two must agree on whether any pair of configs is equal.
        base = two_stage_config()
        variants = [base, two_stage_config()]
        mutated = base.mutated_copy(dirty_stages=[1])
        mutated.stages[1].recompute[:] = True
        variants.append(mutated)
        resized = two_stage_config()
        resized.microbatch_size = 4
        variants.append(resized)
        for a in variants:
            for b in variants:
                same_sig = a.signature() == b.signature()
                same_key = a.cache_key() == b.cache_key()
                assert same_sig == same_key


class TestViews:
    def test_gather_arrays(self):
        tp, dp, tp_dim, rc, stage_id = two_stage_config().gather_arrays()
        assert tp.shape == (10,)
        assert np.all(tp[:4] == 2)
        assert np.all(stage_id[:4] == 0)
        assert np.all(stage_id[4:] == 1)
        assert not rc.any()

    def test_describe(self):
        text = two_stage_config().describe()
        assert "2-stage pipeline" in text
        assert "microbatch=4" in text

    def test_summary_tuple(self):
        summary = two_stage_config().summary_tuple()
        assert summary == ((0, 4, 2), (4, 10, 2), 4)
