"""Edge-case and consistency tests for the performance model."""

import numpy as np
import pytest

from repro.cluster import paper_cluster
from repro.parallel import ParallelConfig, StageConfig, balanced_config
from repro.perfmodel import PerfModel
from repro.profiling import SimulatedProfiler

from conftest import make_tiny_gpt


class TestCacheBehaviour:
    def test_cache_eviction(self, tiny_graph, small_cluster, tiny_database):
        model = PerfModel(
            tiny_graph, small_cluster, tiny_database, cache_size=2
        )
        configs = [
            balanced_config(tiny_graph, small_cluster, s) for s in (1, 2, 4)
        ]
        for config in configs:
            model.estimate(config)
        # Cache was cleared at least once but results stay correct.
        first = model.estimate(configs[0])
        assert first.iteration_time > 0
        assert model.num_estimates >= 3

    def test_num_estimates_counts_unique(self, tiny_graph, small_cluster,
                                         tiny_database):
        model = PerfModel(tiny_graph, small_cluster, tiny_database)
        config = balanced_config(tiny_graph, small_cluster, 2)
        before = model.num_estimates
        for _ in range(5):
            model.estimate(config)
        assert model.num_estimates == before + 1


class TestModelConsistency:
    def test_mbs_tradeoff_visible(self, tiny_graph, small_cluster,
                                  tiny_perf_model):
        """Bigger microbatches: fewer fixed costs, more activation."""
        small = balanced_config(tiny_graph, small_cluster, 2,
                                microbatch_size=2)
        big = balanced_config(tiny_graph, small_cluster, 2,
                              microbatch_size=16)
        r_small = tiny_perf_model.estimate(small)
        r_big = tiny_perf_model.estimate(big)
        assert (
            r_big.stages[0].activation_bytes_mb
            > r_small.stages[0].activation_bytes_mb
        )
        assert r_big.num_microbatches < r_small.num_microbatches

    def test_dp_sync_scales_with_dp(self, tiny_graph, small_cluster,
                                    tiny_perf_model):
        no_dp = balanced_config(tiny_graph, small_cluster, 4)  # dp=1
        full_dp = balanced_config(tiny_graph, small_cluster, 1)  # dp=4
        assert tiny_perf_model.estimate(no_dp).stages[0].dp_sync_time == 0.0
        assert tiny_perf_model.estimate(full_dp).stages[0].dp_sync_time > 0.0

    def test_tp_shrinks_weights_per_device(self, tiny_graph, small_cluster,
                                           tiny_perf_model):
        dp = balanced_config(tiny_graph, small_cluster, 1)        # dp=4
        tp = balanced_config(tiny_graph, small_cluster, 1, tp=4)  # tp=4
        w_dp = tiny_perf_model.estimate(dp).stages[0].weight_bytes
        w_tp = tiny_perf_model.estimate(tp).stages[0].weight_bytes
        assert w_tp < w_dp

    def test_iteration_time_scales_with_batch(self, small_cluster):
        small_batch = make_tiny_gpt(batch_size=32)
        big_batch = make_tiny_gpt(batch_size=128)
        db = SimulatedProfiler(small_cluster, seed=0).profile(small_batch)
        model_small = PerfModel(small_batch, small_cluster, db)
        model_big = PerfModel(big_batch, small_cluster, db)
        c_small = balanced_config(small_batch, small_cluster, 2)
        c_big = balanced_config(big_batch, small_cluster, 2)
        t_small = model_small.estimate(c_small).iteration_time
        t_big = model_big.estimate(c_big).iteration_time
        assert t_big > 2 * t_small

    def test_single_op_stages(self, small_cluster, tiny_database,
                              tiny_graph):
        """Degenerate spans (one op per edge stage) still estimate."""
        model = PerfModel(tiny_graph, small_cluster, tiny_database)
        n = tiny_graph.num_ops
        config = ParallelConfig(
            stages=[
                StageConfig.uniform(0, 1, 1),
                StageConfig.uniform(1, n - 1, 2),
                StageConfig.uniform(n - 1, n, 1),
            ],
            microbatch_size=2,
        )
        report = model.estimate(config)
        assert report.iteration_time > 0
        assert report.num_stages == 3

    def test_replicated_ops_do_not_pay_tp_comm(self, small_cluster,
                                               tiny_database, tiny_graph):
        """Ops with max_tp=1 (layernorm) under tp>1 stay comm-free."""
        model = PerfModel(tiny_graph, small_cluster, tiny_database)
        config = balanced_config(tiny_graph, small_cluster, 1, tp=4)
        report = model.estimate(config)
        # There is tp communication overall (matmuls)...
        assert report.stages[0].tp_comm_time_mb > 0
        # ...and the estimate is still finite/sane.
        assert np.isfinite(report.iteration_time)


class TestHeterogeneousModels:
    @pytest.mark.parametrize("model_name", ["t5-770m", "wresnet-500m"])
    def test_estimates_for_other_families(self, model_name, small_cluster):
        from repro.ir.models import build_model

        graph = build_model(model_name, batch_size=64)
        db = SimulatedProfiler(small_cluster, seed=0).profile(graph)
        model = PerfModel(graph, small_cluster, db)
        for stages in (1, 2, 4):
            config = balanced_config(graph, small_cluster, stages)
            report = model.estimate(config)
            assert report.iteration_time > 0
            assert len(report.stages) == stages
