"""Tests for the GPT-3 / T5 / Wide-ResNet builders and registry."""

import pytest

from repro.ir.models import (
    GPT3_SIZES,
    T5_SIZES,
    WRN_SIZES,
    available_models,
    build_gpt3,
    build_gpt3_layers,
    build_model,
    build_t5,
    build_wide_resnet,
)
from repro.ir.models.gpt3 import GPTSpec


class TestGPT3:
    def test_all_paper_sizes_build(self):
        for size in GPT3_SIZES:
            graph = build_gpt3(size)
            assert graph.num_ops > 0
            assert graph.precision == "fp16"
            assert graph.global_batch_size == 1024

    def test_param_counts_near_labels(self):
        # Labels are approximate; require the right order of magnitude
        # and monotone growth along the ladder.
        sizes = ["350m", "1.3b", "2.6b", "6.7b", "13b"]
        params = [build_gpt3(s).total_params for s in sizes]
        assert params == sorted(params)
        assert 0.2e9 < params[0] < 0.6e9
        assert 9e9 < params[-1] < 17e9

    def test_layer_spans_cover_layers(self):
        graph = build_gpt3("350m")
        assert graph.num_layers == 24
        for start, end in graph.layer_spans:
            assert end > start

    def test_unknown_size_raises(self):
        with pytest.raises(KeyError):
            build_gpt3("9000b")

    def test_hidden_heads_divisibility_enforced(self):
        with pytest.raises(ValueError):
            GPTSpec(num_layers=1, hidden=10, num_heads=3)

    def test_layers_variant(self):
        graph = build_gpt3_layers(128)
        assert graph.num_layers == 128
        assert graph.name == "gpt-128l"

    def test_layers_variant_validates(self):
        with pytest.raises(ValueError):
            build_gpt3_layers(0)


class TestT5:
    def test_all_paper_sizes_build(self):
        for size in T5_SIZES:
            graph = build_t5(size)
            assert graph.num_ops > 0

    def test_heterogeneous_costs(self):
        """Encoder layers (seq 2048) cost more than decoder self-attn
        at seq 512 — the imbalance the paper highlights."""
        graph = build_t5("770m")
        enc_qkv = graph.ops[graph.op_index("enc0.attn_qkv")]
        dec_qkv = graph.ops[graph.op_index("dec0.attn_qkv")]
        assert enc_qkv.flops == 4 * dec_qkv.flops

    def test_decoder_has_cross_attention(self):
        graph = build_t5("770m")
        assert graph.op_index("dec0.xattn_core") > 0

    def test_unknown_size_raises(self):
        with pytest.raises(KeyError):
            build_t5("100t")


class TestWideResNet:
    def test_all_paper_sizes_build(self):
        for size in WRN_SIZES:
            graph = build_wide_resnet(size)
            assert graph.precision == "fp32"
            assert graph.global_batch_size == 1536

    def test_param_monotone(self):
        sizes = ["500m", "2b", "4b", "6.8b", "13b"]
        params = [build_wide_resnet(s).total_params for s in sizes]
        assert params == sorted(params)

    def test_conv_ops_present(self):
        graph = build_wide_resnet("500m")
        kinds = {op.kind for op in graph.ops}
        assert "conv2d" in kinds
        assert "norm2d" in kinds

    def test_unknown_size_raises(self):
        with pytest.raises(KeyError):
            build_wide_resnet("tiny")


class TestRegistry:
    def test_available_models_cover_families(self):
        names = available_models()
        assert "gpt3-1.3b" in names
        assert "t5-3b" in names
        assert "wresnet-6.8b" in names

    def test_build_by_name(self):
        assert build_model("gpt3-350m").name == "gpt3-350m"
        assert build_model("GPT3-350M").name == "gpt3-350m"

    def test_layers_pattern(self):
        assert build_model("gpt-32l").num_layers == 32

    def test_batch_size_override(self):
        assert build_model("gpt3-350m", batch_size=64).global_batch_size == 64

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            build_model("resnet-50")
        with pytest.raises(KeyError):
            build_model("nonsense")
