"""Tests for repro.ir.ops."""

import pytest

from repro.ir.ops import (
    OpSpec,
    PartitionOption,
    attention_core_op,
    conv2d_op,
    elementwise_op,
    embedding_op,
    layernorm_op,
    lm_head_op,
    loss_op,
    matmul_op,
)


class TestOpSpec:
    def test_bwd_flops_default_ratio(self):
        op = matmul_op("m", 4, 4, 2)
        assert op.bwd_flops == pytest.approx(2.0 * op.flops)
        assert op.total_flops == pytest.approx(3.0 * op.flops)

    def test_negative_cost_raises(self):
        with pytest.raises(ValueError):
            OpSpec("bad", "x", flops=-1, params=0, out_numel=1, saved_numel=1)

    def test_no_options_raises(self):
        with pytest.raises(ValueError):
            OpSpec(
                "bad", "x", flops=1, params=0, out_numel=1, saved_numel=1,
                partition_options=(),
            )

    def test_option_lookup(self):
        op = matmul_op("m", 4, 8, 2)
        assert op.option(0).name == "column"
        assert op.option(1).name == "row"
        with pytest.raises(IndexError):
            op.option(5)


class TestMatmulOp:
    def test_flops_formula(self):
        op = matmul_op("m", 16, 32, 8)
        assert op.flops == 2.0 * 8 * 16 * 32

    def test_params_include_bias(self):
        op = matmul_op("m", 16, 32, 8)
        assert op.params == 16 * 32 + 32

    def test_column_style_has_no_fwd_comm(self):
        op = matmul_op("m", 16, 32, 8, parallel_style="column")
        assert op.option(0).fwd_comm_numel == 0
        assert op.option(0).bwd_comm_numel == 8 * 16

    def test_row_style_allreduces_output(self):
        op = matmul_op("m", 16, 32, 8, parallel_style="row")
        assert op.option(0).name == "row"
        assert op.option(0).fwd_comm_numel == 8 * 32
        assert not op.option(0).shards_output

    def test_both_dims_always_available(self):
        for style in ("column", "row"):
            op = matmul_op("m", 16, 32, 8, parallel_style=style)
            assert {o.name for o in op.partition_options} == {"row", "column"}


class TestAttentionCoreOp:
    def test_max_tp_is_heads(self):
        op = attention_core_op("a", 32, 32, 64, num_heads=4)
        assert op.max_tp == 4

    def test_no_params(self):
        assert attention_core_op("a", 32, 32, 64, 4).params == 0

    def test_flops_scale_with_kv_len(self):
        short = attention_core_op("a", 32, 32, 64, 4)
        long = attention_core_op("a", 32, 64, 64, 4)
        assert long.flops == 2 * short.flops


class TestOtherOps:
    def test_layernorm_not_partitionable(self):
        op = layernorm_op("ln", 32, 64)
        assert op.max_tp == 1
        assert op.params == 128

    def test_elementwise_no_params(self):
        op = elementwise_op("gelu", "gelu", 1024)
        assert op.params == 0
        assert op.out_numel == 1024

    def test_embedding_saves_only_ids(self):
        op = embedding_op("emb", 512, 64, 32)
        assert op.saved_numel == 32
        assert op.params == 512 * 64

    def test_lm_head_large_output(self):
        op = lm_head_op("head", 512, 64, 32)
        assert op.out_numel == 32 * 512

    def test_loss_scalar_output(self):
        assert loss_op("loss", 1000).out_numel == 1

    def test_conv_flops(self):
        op = conv2d_op("c", 8, 16, 3, 14)
        assert op.flops == 2.0 * 9 * 8 * 16 * 14 * 14

    def test_conv_max_tp_limited_by_channels(self):
        op = conv2d_op("c", 8, 16, 3, 14)
        assert op.max_tp == 8

    def test_conv_partition_styles(self):
        op = conv2d_op("c", 8, 16, 1, 14, parallel_style="in_channel")
        assert op.option(0).name == "in_channel"
