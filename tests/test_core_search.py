"""Tests for ranking, multi-hop, dedup, budget, trace, and the search."""

import time

import numpy as np
import pytest

from repro.core import (
    AcesoSearch,
    AcesoSearchOptions,
    ApplyContext,
    MultiHopSearcher,
    SearchBudget,
    SearchTrace,
    UnexploredPool,
    VisitedSet,
    candidate_groups,
    default_stage_counts,
    identify_bottleneck,
    search_all_stage_counts,
)
from repro.parallel import balanced_config


@pytest.fixture()
def ctx(tiny_graph, small_cluster, tiny_perf_model):
    config = balanced_config(tiny_graph, small_cluster, 4)
    report = tiny_perf_model.estimate(config)
    return ApplyContext(
        graph=tiny_graph,
        cluster=small_cluster,
        perf_model=tiny_perf_model,
        config=config,
        report=report,
        bottleneck=identify_bottleneck(report),
    )


class TestRanking:
    def test_groups_sorted_by_objective(self, ctx):
        groups = candidate_groups(ctx)
        assert groups
        for group in groups:
            assert group.objectives == sorted(group.objectives)

    def test_primitives_unique_across_groups(self, ctx):
        groups = candidate_groups(ctx)
        names = [g.primitive for g in groups]
        assert len(names) == len(set(names))

    def test_first_group_targets_primary_resource(self, ctx):
        groups = candidate_groups(ctx)
        assert groups[0].resource == ctx.bottleneck.primary_resource

    def test_random_mode_shuffles(self, ctx):
        rng = np.random.default_rng(0)
        groups = candidate_groups(ctx, rng=rng)
        assert groups  # still generates candidates


class TestDedup:
    def test_visited_set(self, tiny_config):
        visited = VisitedSet()
        assert visited.add(tiny_config)
        assert not visited.add(tiny_config)
        assert visited.hits == 1
        assert tiny_config in visited
        assert len(visited) == 1

    def test_unexplored_pool_pops_best(self, tiny_config):
        pool = UnexploredPool()
        worse = tiny_config.clone()
        worse.microbatch_size *= 2
        pool.put(tiny_config, 5.0)
        pool.put(worse, 1.0)
        assert pool.pop_best().signature() == worse.signature()
        assert len(pool) == 1
        pool.remove(tiny_config)
        assert pool.pop_best() is None

    def test_pool_put_keeps_first(self, tiny_config):
        pool = UnexploredPool()
        pool.put(tiny_config, 5.0)
        pool.put(tiny_config, 1.0)  # ignored duplicate
        assert len(pool) == 1


class TestBudget:
    def test_iteration_limit(self):
        budget = SearchBudget(max_iterations=3)
        budget.start()
        assert not budget.exhausted(iterations=2)
        assert budget.exhausted(iterations=3)

    def test_estimate_limit_relative(self):
        budget = SearchBudget(max_estimates=10)
        budget.start(current_estimates=100)
        assert not budget.exhausted(estimates=105)
        assert budget.exhausted(estimates=110)

    def test_time_limit(self):
        budget = SearchBudget(max_seconds=0.01)
        budget.start()
        time.sleep(0.02)
        assert budget.exhausted()

    def test_requires_some_limit(self):
        with pytest.raises(ValueError):
            SearchBudget()
        with pytest.raises(ValueError):
            SearchBudget(max_iterations=0)

    def test_elapsed_requires_start(self):
        with pytest.raises(RuntimeError):
            SearchBudget(max_iterations=1).elapsed()


class TestTrace:
    def test_histograms(self):
        trace = SearchTrace()
        for i, (tried, hops, improved) in enumerate(
            [(1, 1, True), (1, 3, True), (2, 2, True), (1, 0, False)]
        ):
            trace.record_iteration(
                index=i, elapsed=float(i), bottlenecks_tried=tried,
                hops_used=hops, improved=improved,
                objective=1.0, best_objective=1.0,
            )
        assert trace.bottleneck_histogram() == {1: 2, 2: 1}
        assert trace.hop_histogram() == {1: 1, 3: 1, 2: 1}
        assert trace.first_try_rate() == pytest.approx(2 / 3)
        assert trace.multi_hop_rate() == pytest.approx(2 / 3)

    def test_empty_rates(self):
        trace = SearchTrace()
        assert trace.first_try_rate() == 0.0
        assert trace.multi_hop_rate() == 0.0


class TestMultiHop:
    def test_finds_improvement(self, tiny_graph, small_cluster,
                               tiny_perf_model):
        config = balanced_config(tiny_graph, small_cluster, 4)
        searcher = MultiHopSearcher(
            tiny_graph, small_cluster, tiny_perf_model, max_hops=3
        )
        result = searcher.search(
            config, visited=VisitedSet(), unexplored=UnexploredPool()
        )
        assert result is not None
        assert result.objective < tiny_perf_model.objective(config)
        assert 1 <= result.hops_used <= 3

    def test_respects_max_nodes(self, tiny_graph, small_cluster,
                                tiny_perf_model):
        config = balanced_config(tiny_graph, small_cluster, 4)
        searcher = MultiHopSearcher(
            tiny_graph, small_cluster, tiny_perf_model,
            max_hops=7, max_nodes=1,
        )
        searcher.search(
            config, visited=VisitedSet(), unexplored=UnexploredPool()
        )
        assert searcher._nodes_left >= 0

    def test_should_stop_aborts(self, tiny_graph, small_cluster,
                                tiny_perf_model):
        config = balanced_config(tiny_graph, small_cluster, 4)
        searcher = MultiHopSearcher(
            tiny_graph, small_cluster, tiny_perf_model,
            should_stop=lambda: True,
        )
        result = searcher.search(
            config, visited=VisitedSet(), unexplored=UnexploredPool()
        )
        assert result is None

    def test_validation(self, tiny_graph, small_cluster, tiny_perf_model):
        with pytest.raises(ValueError):
            MultiHopSearcher(
                tiny_graph, small_cluster, tiny_perf_model, max_hops=0
            )
        with pytest.raises(ValueError):
            MultiHopSearcher(
                tiny_graph, small_cluster, tiny_perf_model, beam_width=0
            )


class TestAcesoSearch:
    def test_improves_over_init(self, tiny_graph, small_cluster,
                                tiny_perf_model):
        init = balanced_config(tiny_graph, small_cluster, 4)
        search = AcesoSearch(tiny_graph, small_cluster, tiny_perf_model)
        result = search.run(init, SearchBudget(max_iterations=6))
        assert result.best_objective <= tiny_perf_model.objective(init)
        assert result.trace.num_iterations <= 6
        assert result.best_report.iteration_time == pytest.approx(
            result.best_objective
        )

    def test_top_configs_sorted_unique(self, tiny_graph, small_cluster,
                                       tiny_perf_model):
        init = balanced_config(tiny_graph, small_cluster, 4)
        search = AcesoSearch(tiny_graph, small_cluster, tiny_perf_model)
        result = search.run(init, SearchBudget(max_iterations=6))
        objectives = [o for o, _ in result.top_configs]
        assert objectives == sorted(objectives)
        signatures = [c.signature() for _, c in result.top_configs]
        assert len(signatures) == len(set(signatures))

    def test_convergence_monotone(self, tiny_graph, small_cluster,
                                  tiny_perf_model):
        init = balanced_config(tiny_graph, small_cluster, 4)
        search = AcesoSearch(tiny_graph, small_cluster, tiny_perf_model)
        result = search.run(init, SearchBudget(max_iterations=8))
        bests = [b for _, b in result.trace.convergence]
        assert all(b2 <= b1 for b1, b2 in zip(bests, bests[1:]))

    def test_random_mode_runs(self, tiny_graph, small_cluster,
                              tiny_perf_model):
        init = balanced_config(tiny_graph, small_cluster, 4)
        options = AcesoSearchOptions(use_heuristic2=False, seed=3,
                                     enable_finetune=False)
        search = AcesoSearch(
            tiny_graph, small_cluster, tiny_perf_model, options=options
        )
        result = search.run(init, SearchBudget(max_iterations=4))
        assert result.best_objective <= tiny_perf_model.objective(init)

    def test_oom_start_becomes_feasible(self):
        from conftest import (
    make_activation_heavy_gpt,
    make_tight_cluster,
    make_tiny_gpt,
)
        from repro.perfmodel import PerfModel
        from repro.profiling import SimulatedProfiler

        graph = make_activation_heavy_gpt()
        cluster = make_tight_cluster(num_gpus=4, memory_mb=64)
        db = SimulatedProfiler(cluster, seed=0).profile(graph)
        pm = PerfModel(graph, cluster, db)
        init = balanced_config(graph, cluster, 2, microbatch_size=16)
        assert pm.estimate(init).is_oom
        search = AcesoSearch(graph, cluster, pm)
        result = search.run(init, SearchBudget(max_iterations=10))
        assert result.is_feasible


class TestStageCountDriver:
    def test_default_stage_counts(self, tiny_graph, small_cluster):
        assert default_stage_counts(tiny_graph, small_cluster) == [1, 2, 4]

    def test_multi_search(self, tiny_graph, small_cluster, tiny_perf_model):
        multi = search_all_stage_counts(
            tiny_graph, small_cluster, tiny_perf_model,
            budget_per_count={"max_iterations": 4},
        )
        assert len(multi.runs) == 3
        assert multi.parallel_seconds <= multi.serial_seconds
        best = multi.best
        assert best.best_objective == min(
            run.result.best_objective for run in multi.runs
        )
        top = multi.top_configs(5)
        assert len(top) >= 1
        assert [o for o, _ in top] == sorted(o for o, _ in top)

    def test_empty_counts_raise(self, tiny_graph, small_cluster,
                                tiny_perf_model):
        with pytest.raises(ValueError):
            search_all_stage_counts(
                tiny_graph, small_cluster, tiny_perf_model, stage_counts=[]
            )
