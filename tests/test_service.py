"""Planner service: protocol, admission, breaker, cache, daemon, HTTP.

The daemon tests swap the real search for deterministic fake planners
(the daemon treats planning as an opaque callable); two end-to-end
tests at the bottom run the real planner and the real ``repro-serve``
process, including the SIGTERM drain/resume contract.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.service import (
    STATUS_FAILED,
    STATUS_PARTIAL,
    STATUS_REJECTED,
    STATUS_SERVED,
    TERMINAL_STATUSES,
    AdmissionController,
    BreakerOpenError,
    CircuitBreaker,
    PlanCache,
    PlanOutcome,
    PlanRequest,
    PlanResponse,
    PlannerDaemon,
    ProtocolError,
    QueueFullError,
    TicketTimeout,
    serve,
)
from repro.telemetry import CallbackSink, TelemetryBus, using_bus


def ok_outcome(request, objective=1.0, partial=False):
    return PlanOutcome(
        plan={"model": request.model, "gpus": request.gpus},
        objective=objective,
        partial=partial,
    )


def quick_planner(request, *, deadline=None, checkpoint_path=None):
    return ok_outcome(request)


@pytest.fixture()
def bus_events():
    """Install a fresh global bus and collect every event."""
    events = []
    bus = TelemetryBus()
    bus.add_sink(CallbackSink(events.append))
    with using_bus(bus):
        yield events


class TestProtocol:
    def test_request_round_trip(self):
        request = PlanRequest(
            model="gpt-4l",
            gpus=4,
            stage_counts=(1, 2),
            iterations=5,
            seed=3,
            deadline_seconds=2.5,
            priority=7,
        )
        assert PlanRequest.from_json(request.to_json()) == request

    def test_response_round_trip(self):
        response = PlanResponse(
            status=STATUS_PARTIAL,
            request_id=4,
            fingerprint="abc",
            plan={"stages": []},
            objective=0.5,
            failures=[{"num_stages": 2, "kind": "deadline"}],
        )
        assert PlanResponse.from_json(response.to_json()) == response
        assert response.ok

    def test_fingerprint_canonicalizes_stage_counts(self):
        a = PlanRequest(model="m", stage_counts=(1, 2, 4))
        b = PlanRequest(model="m", stage_counts=(4, 2, 1, 2))
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_ignores_deadline_and_priority(self):
        patient = PlanRequest(model="m")
        impatient = PlanRequest(
            model="m", deadline_seconds=0.5, priority=9
        )
        assert patient.fingerprint() == impatient.fingerprint()
        assert (
            PlanRequest(model="m", seed=1).fingerprint()
            != patient.fingerprint()
        )

    def test_rejects_malformed_requests(self):
        with pytest.raises(ProtocolError):
            PlanRequest(model="")
        with pytest.raises(ProtocolError):
            PlanRequest(model="m", gpus=0)
        with pytest.raises(ProtocolError):
            PlanRequest(model="m", deadline_seconds=0.0)
        with pytest.raises(ProtocolError):
            PlanRequest(model="m", stage_counts=(0,))
        with pytest.raises(ProtocolError, match="unknown request"):
            PlanRequest.from_json({"model": "m", "bogus": 1})
        with pytest.raises(ProtocolError, match="protocol version"):
            PlanRequest.from_json({"model": "m", "protocol_version": 99})
        with pytest.raises(ProtocolError):
            PlanResponse(status="nope", request_id=1, fingerprint="x")


class TestAdmission:
    def test_priority_then_fifo(self):
        queue = AdmissionController(8)
        queue.submit("low-1", priority=0)
        queue.submit("high", priority=5)
        queue.submit("low-2", priority=0)
        order = [queue.next(timeout=0.1) for _ in range(3)]
        assert order == ["high", "low-1", "low-2"]

    def test_overflow_rejects_with_retry_after(self):
        queue = AdmissionController(2, workers=1)
        queue.submit("a")
        queue.submit("b")
        with pytest.raises(QueueFullError) as exc_info:
            queue.submit("c")
        assert exc_info.value.retry_after > 0
        assert exc_info.value.depth == 2
        assert queue.stats()["rejected"] == 1
        assert queue.saturated

    def test_retry_after_tracks_service_times(self):
        slow = AdmissionController(1, workers=1)
        fast = AdmissionController(1, workers=1)
        for _ in range(20):
            slow.note_service_seconds(10.0)
            fast.note_service_seconds(0.01)
        slow.submit("x")
        fast.submit("x")
        with pytest.raises(QueueFullError) as on_slow:
            slow.submit("y")
        with pytest.raises(QueueFullError) as on_fast:
            fast.submit("y")
        assert on_slow.value.retry_after > on_fast.value.retry_after

    def test_close_unblocks_waiting_consumer(self):
        queue = AdmissionController(2)
        got = []
        worker = threading.Thread(
            target=lambda: got.append(queue.next(timeout=5))
        )
        worker.start()
        queue.close()
        worker.join(timeout=2)
        assert not worker.is_alive()
        assert got == [None]
        with pytest.raises(RuntimeError):
            queue.submit("late")


class TestCircuitBreaker:
    def make(self, **kwargs):
        self.now = [0.0]
        kwargs.setdefault("failure_threshold", 2)
        kwargs.setdefault("reset_seconds", 10.0)
        return CircuitBreaker(clock=lambda: self.now[0], **kwargs)

    def test_opens_after_consecutive_failures(self):
        breaker = self.make()
        breaker.record_failure("k", "boom 1")
        breaker.check("k")  # one failure: still closed
        breaker.record_failure("k", "boom 2")
        with pytest.raises(BreakerOpenError) as exc_info:
            breaker.check("k")
        assert "boom 2" in str(exc_info.value)
        assert breaker.state("k") == "open"

    def test_success_resets_the_count(self):
        breaker = self.make()
        breaker.record_failure("k", "boom")
        breaker.record_success("k")
        breaker.record_failure("k", "boom")
        breaker.check("k")  # never reached the threshold

    def test_half_open_probe_closes_on_success(self):
        breaker = self.make()
        breaker.record_failure("k", "a")
        breaker.record_failure("k", "b")
        self.now[0] = 11.0
        breaker.check("k")  # admitted as the half-open probe
        # Concurrent non-probe callers keep failing fast.
        with pytest.raises(BreakerOpenError):
            breaker.check("k")
        breaker.record_success("k")
        assert breaker.state("k") == "closed"
        breaker.check("k")

    def test_failed_probe_reopens_immediately(self):
        breaker = self.make()
        breaker.record_failure("k", "a")
        breaker.record_failure("k", "b")
        self.now[0] = 11.0
        breaker.check("k")
        breaker.record_failure("k", "probe died")
        assert breaker.state("k") == "open"
        with pytest.raises(BreakerOpenError):
            breaker.check("k")

    def test_keys_are_independent(self):
        breaker = self.make()
        breaker.record_failure("bad", "x")
        breaker.record_failure("bad", "y")
        breaker.check("good")
        assert breaker.any_open
        snapshot = breaker.snapshot()
        assert snapshot["bad"]["state"] == "open"
        assert "good" not in snapshot or (
            snapshot["good"]["state"] == "closed"
        )


class TestPlanCache:
    def test_lru_eviction(self):
        cache = PlanCache(max_entries=2)
        cache.put("a", {"plan": 1})
        cache.put("b", {"plan": 2})
        assert cache.get("a")["plan"] == 1  # refresh a
        cache.put("c", {"plan": 3})  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_write_through_persistence(self, tmp_path):
        first = PlanCache(directory=tmp_path)
        first.put("abc", {"plan": {"stages": []}, "objective": 0.5})
        assert (tmp_path / "abc.plan.json").exists()
        reborn = PlanCache(directory=tmp_path)
        assert reborn.get("abc")["objective"] == 0.5

    def test_torn_plan_file_is_skipped(self, tmp_path):
        (tmp_path / "bad.plan.json").write_text('{"plan": tru')
        cache = PlanCache(directory=tmp_path)
        assert cache.get("bad") is None

    def test_invalidate_reaches_disk(self, tmp_path):
        cache = PlanCache(directory=tmp_path)
        cache.put("a", {"plan": 1, "gpus": 4})
        cache.put("b", {"plan": 2, "gpus": 8})
        dropped = cache.invalidate(
            lambda fp, entry: entry.get("gpus") == 4
        )
        assert dropped == 1
        assert cache.get("a") is None
        assert cache.get("b") is not None
        assert not (tmp_path / "a.plan.json").exists()
        assert cache.invalidate() == 1
        assert len(cache) == 0


class TestDaemon:
    def make(self, planner=quick_planner, **kwargs):
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("queue_limit", 4)
        daemon = PlannerDaemon(planner=planner, **kwargs).start()
        self.daemons.append(daemon)
        return daemon

    @pytest.fixture(autouse=True)
    def _cleanup(self):
        self.daemons = []
        yield
        for daemon in self.daemons:
            daemon.drain(timeout=5)

    def test_serves_and_caches(self, bus_events):
        daemon = self.make()
        request = PlanRequest(model="m", gpus=4)
        first = daemon.submit(request, timeout=10)
        assert first.status == STATUS_SERVED
        assert not first.cached
        second = daemon.submit(request, timeout=10)
        assert second.status == STATUS_SERVED
        assert second.cached
        assert second.plan == first.plan
        names = [e.name for e in bus_events]
        assert "service.request.completed" in names
        assert "service.cache.hit" in names

    def test_partial_outcome_is_not_cached(self, bus_events):
        def partial_planner(request, *, deadline=None,
                            checkpoint_path=None):
            return ok_outcome(request, partial=True)

        daemon = self.make(planner=partial_planner)
        request = PlanRequest(model="m")
        first = daemon.submit(request, timeout=10)
        assert first.status == STATUS_PARTIAL
        second = daemon.submit(request, timeout=10)
        assert second.status == STATUS_PARTIAL
        assert not second.cached

    def test_failures_open_the_breaker(self, bus_events):
        def broken_planner(request, *, deadline=None,
                           checkpoint_path=None):
            raise RuntimeError("no such model")

        daemon = self.make(planner=broken_planner, breaker_threshold=2)
        request = PlanRequest(model="bad")
        assert daemon.submit(request, timeout=10).status == STATUS_FAILED
        assert daemon.submit(request, timeout=10).status == STATUS_FAILED
        # Breaker open: the third request never reaches a worker.
        fast = daemon.submit(request, timeout=10)
        assert fast.status == STATUS_REJECTED
        assert fast.retry_after is not None
        assert "no such model" in fast.error
        assert daemon.health()["status"] == "degraded"
        names = [e.name for e in bus_events]
        assert "service.breaker.open" in names

    def test_breaker_probe_recovers_health(self, bus_events):
        calls = []

        def flaky_planner(request, *, deadline=None,
                          checkpoint_path=None):
            calls.append(request.model)
            if len(calls) <= 2:
                raise RuntimeError("transient")
            return ok_outcome(request)

        daemon = self.make(
            planner=flaky_planner,
            breaker_threshold=2,
            breaker_reset_seconds=0.2,
        )
        request = PlanRequest(model="m")
        daemon.submit(request, timeout=10)
        daemon.submit(request, timeout=10)
        assert daemon.health()["status"] == "degraded"
        time.sleep(0.25)  # past reset: next request is the probe
        probe = daemon.submit(request, timeout=10)
        assert probe.status == STATUS_SERVED
        assert daemon.health()["status"] == "healthy"
        names = [e.name for e in bus_events]
        assert "service.breaker.probe" in names
        assert "service.breaker.close" in names

    def test_queue_burst_sheds_load(self, bus_events):
        release = threading.Event()

        def gated_planner(request, *, deadline=None,
                          checkpoint_path=None):
            release.wait(timeout=10)
            return ok_outcome(request)

        daemon = self.make(
            planner=gated_planner, workers=1, queue_limit=2
        )
        tickets, rejected = [], []
        # Worker busy on the first + two queued; the rest must shed.
        for i in range(6):
            out = daemon.submit_nowait(PlanRequest(model=f"m{i}"))
            if isinstance(out, PlanResponse):
                rejected.append(out)
            else:
                tickets.append(out)
        assert len(rejected) >= 2
        assert all(r.status == STATUS_REJECTED for r in rejected)
        assert all(r.retry_after > 0 for r in rejected)
        release.set()
        for ticket in tickets:
            response = ticket.wait(timeout=10)
            assert response is not None
            assert response.status == STATUS_SERVED

    def test_watchdog_reaps_hung_requests(self, bus_events):
        def hung_planner(request, *, deadline=None,
                         checkpoint_path=None):
            # Ignores the deadline (a wedged search); only the
            # watchdog's cancel gets it unstuck.
            while not (deadline and deadline.cancelled):
                time.sleep(0.02)
            return ok_outcome(request, partial=True)

        daemon = self.make(
            planner=hung_planner,
            workers=1,
            watchdog_interval=0.05,
            watchdog_grace=0.1,
        )
        response = daemon.submit(
            PlanRequest(model="m", deadline_seconds=0.2), timeout=10
        )
        assert response.status == STATUS_PARTIAL
        assert "service.watchdog.reap" in [e.name for e in bus_events]

    def test_journal_readmits_after_restart(self, tmp_path, bus_events):
        request = PlanRequest(model="m", gpus=4)
        journal = tmp_path / f"{request.fingerprint()}.request.json"
        journal.write_text(json.dumps(request.to_json()))
        daemon = self.make(state_dir=tmp_path)
        # The re-admitted request is planned without any client call.
        for _ in range(100):
            if (
                daemon.cache.get(request.fingerprint()) is not None
                and not journal.exists()
            ):
                break
            time.sleep(0.05)
        assert daemon.cache.get(request.fingerprint()) is not None
        assert not journal.exists()
        assert "service.request.readmitted" in [
            e.name for e in bus_events
        ]

    def test_drain_sheds_queue_and_reports(self, bus_events):
        def gated_planner(request, *, deadline=None,
                          checkpoint_path=None):
            # Runs until the drain cancels its deadline (a cooperative
            # search stopping at an iteration boundary).
            started = time.monotonic()
            while not (deadline and deadline.cancelled):
                if time.monotonic() - started > 10:
                    raise RuntimeError("drain never cancelled")
                time.sleep(0.01)
            return ok_outcome(request)

        daemon = self.make(
            planner=gated_planner, workers=1, queue_limit=4
        )
        tickets = [
            daemon.submit_nowait(PlanRequest(model=f"m{i}"))
            for i in range(3)
        ]
        summary = daemon.drain(timeout=10)
        assert not daemon.ready
        assert summary["queued_shed"] + summary[
            "in_flight_interrupted"
        ] >= 1
        for ticket in tickets:
            response = ticket.wait(timeout=5)
            assert response is not None
            assert response.status in TERMINAL_STATUSES
        late = daemon.submit(PlanRequest(model="late"), timeout=5)
        assert late.status == STATUS_REJECTED

    def test_chaos_every_request_terminates(self, bus_events):
        """The acceptance scenario: concurrent load + injected crashes
        + a sub-second deadline + a queue burst — every request gets a
        well-formed terminal response, nothing hangs, and health goes
        degraded -> healthy once the breaker closes."""
        crash_count = [0]

        def chaos_planner(request, *, deadline=None,
                          checkpoint_path=None):
            if request.model.startswith("crash"):
                crash_count[0] += 1
                if crash_count[0] <= 2:
                    raise RuntimeError("injected worker crash")
                return ok_outcome(request)
            if request.model == "slow":
                while not (deadline and deadline.expired()):
                    time.sleep(0.01)
                return ok_outcome(request, partial=True)
            time.sleep(0.02)
            return ok_outcome(request)

        daemon = self.make(
            planner=chaos_planner,
            workers=2,
            queue_limit=3,
            breaker_threshold=2,
            breaker_reset_seconds=0.2,
        )
        requests = (
            # Distinct fingerprints (identical in-flight requests would
            # coalesce into one search — one crash, not two) but the
            # same breaker key, which ignores the seed.
            [PlanRequest(model="crash-model", seed=i)
             for i in range(2)]
            + [PlanRequest(model="slow", deadline_seconds=0.3)]
            + [PlanRequest(model=f"burst-{i}") for i in range(9)]
        )
        responses = [None] * len(requests)

        def client(index):
            responses[index] = daemon.submit(requests[index], timeout=30)

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(len(requests))
        ]
        # The crash and deadline requests launch first so the queue
        # burst cannot shed them before they reach a worker.
        for thread in threads[:3]:
            thread.start()
        time.sleep(0.1)
        for thread in threads[3:]:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(t.is_alive() for t in threads), "a request hung"
        statuses = set()
        for response in responses:
            assert response is not None
            assert response.status in TERMINAL_STATUSES
            statuses.add(response.status)
            round_trip = PlanResponse.from_json(response.to_json())
            assert round_trip.status == response.status
        assert STATUS_FAILED in statuses  # the injected crashes
        # Sub-second deadline answered with the best-so-far plan.
        slow_response = responses[2]
        assert slow_response.status in (STATUS_PARTIAL, STATUS_REJECTED)
        # Breaker opened on the crash model -> degraded; after the
        # reset window a successful probe closes it -> healthy again.
        assert "service.breaker.open" in [e.name for e in bus_events]
        time.sleep(0.25)
        recovered = daemon.submit(
            PlanRequest(model="crash-model"), timeout=10
        )
        assert recovered.status == STATUS_SERVED
        assert daemon.health()["status"] == "healthy"


class TestCoalescing:
    @pytest.fixture(autouse=True)
    def _cleanup(self):
        self.daemons = []
        yield
        for daemon in self.daemons:
            daemon.drain(timeout=5)

    def make(self, planner=quick_planner, **kwargs):
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("queue_limit", 8)
        daemon = PlannerDaemon(planner=planner, **kwargs).start()
        self.daemons.append(daemon)
        return daemon

    def test_concurrent_identical_requests_share_one_search(
        self, bus_events
    ):
        """N same-fingerprint submits in flight -> exactly one planner
        call; every caller gets an identical plan."""
        gate = threading.Event()
        calls = []
        lock = threading.Lock()

        def gated_planner(request, *, deadline=None,
                          checkpoint_path=None):
            with lock:
                calls.append(request.fingerprint())
            gate.wait(timeout=10)
            return ok_outcome(request)

        daemon = self.make(planner=gated_planner, workers=1)
        request = PlanRequest(model="m", gpus=4)
        tickets = [daemon.submit_nowait(request) for _ in range(5)]
        followers = [t for t in tickets if t.coalesced]
        assert len(followers) == 4
        gate.set()
        responses = [t.wait(timeout=10) for t in tickets]
        assert len(calls) == 1
        assert all(r.status == STATUS_SERVED for r in responses)
        plans = {json.dumps(r.plan, sort_keys=True) for r in responses}
        assert len(plans) == 1
        # Followers are flagged and keep their own request ids.
        assert [r.request_id for r in responses] == [
            t.request_id for t in tickets
        ]
        coalesced = [r for r in responses if r.coalesced]
        assert len(coalesced) == 4
        names = [e.name for e in bus_events]
        assert names.count("coalesce.attach") == 4
        assert "coalesce.fanout" in names
        stats = daemon.health()["coalesce"]
        assert stats["total"] == 4

    def test_distinct_fingerprints_do_not_coalesce(self):
        gate = threading.Event()

        def gated_planner(request, *, deadline=None,
                          checkpoint_path=None):
            gate.wait(timeout=10)
            return ok_outcome(request)

        daemon = self.make(planner=gated_planner, workers=2)
        one = daemon.submit_nowait(PlanRequest(model="m", gpus=4))
        two = daemon.submit_nowait(PlanRequest(model="m", gpus=8))
        assert not one.coalesced and not two.coalesced
        gate.set()
        assert one.wait(timeout=10).status == STATUS_SERVED
        assert two.wait(timeout=10).status == STATUS_SERVED

    def test_wait_timeout_is_typed(self):
        gate = threading.Event()

        def stuck_planner(request, *, deadline=None,
                          checkpoint_path=None):
            gate.wait(timeout=10)
            return ok_outcome(request)

        daemon = self.make(planner=stuck_planner, workers=1)
        ticket = daemon.submit_nowait(PlanRequest(model="m"))
        outcome = ticket.wait(timeout=0.05)
        assert isinstance(outcome, TicketTimeout)
        assert not outcome.ok
        assert outcome.fingerprint == ticket.request.fingerprint()
        assert outcome.waited_seconds >= 0.05
        gate.set()
        final = ticket.wait(timeout=10)
        assert final.status == STATUS_SERVED

    def test_submit_maps_timeout_to_failed_response(self):
        gate = threading.Event()

        def stuck_planner(request, *, deadline=None,
                          checkpoint_path=None):
            gate.wait(timeout=10)
            return ok_outcome(request)

        daemon = self.make(planner=stuck_planner, workers=1)
        response = daemon.submit(PlanRequest(model="m"), timeout=0.05)
        assert response.status == STATUS_FAILED
        assert "timed out" in response.error
        gate.set()


class TestHTTP:
    @pytest.fixture()
    def server(self, tmp_path):
        daemon = PlannerDaemon(
            planner=quick_planner, workers=2, queue_limit=4,
            state_dir=tmp_path,
        ).start()
        http_server = serve(daemon, host="127.0.0.1", port=0)
        thread = threading.Thread(
            target=http_server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        yield http_server
        http_server.shutdown()
        daemon.drain(timeout=5)
        http_server.server_close()

    def post(self, server, path, payload):
        port = server.server_address[1]
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as reply:
                return reply.status, json.loads(reply.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def get(self, server, path):
        port = server.server_address[1]
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=10
            ) as reply:
                return reply.status, json.loads(reply.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_plan_and_health_endpoints(self, server):
        request = PlanRequest(model="m", gpus=4)
        code, body = self.post(server, "/plan", request.to_json())
        assert code == 200
        response = PlanResponse.from_json(body)
        assert response.status == STATUS_SERVED
        code, health = self.get(server, "/healthz")
        assert code == 200
        assert health["status"] == "healthy"
        code, readiness = self.get(server, "/readyz")
        assert code == 200 and readiness["ready"]

    def test_bad_requests_get_400(self, server):
        code, body = self.post(server, "/plan", {"bogus": True})
        assert code == 400
        assert "error" in body
        code, _ = self.post(server, "/nowhere", {})
        assert code == 404
        code, _ = self.get(server, "/nowhere")
        assert code == 404

    def test_invalidate_endpoint(self, server):
        request = PlanRequest(model="m", gpus=4)
        self.post(server, "/plan", request.to_json())
        code, body = self.post(server, "/invalidate", {"gpus": 4})
        assert code == 200
        assert body["dropped"] == 1
        code, body = self.post(server, "/invalidate", {"gpus": "x"})
        assert code == 400


class TestRealPlannerEndToEnd:
    def test_request_plans_and_caches(self, tmp_path):
        daemon = PlannerDaemon(
            workers=1, queue_limit=2, state_dir=tmp_path
        ).start()
        try:
            request = PlanRequest(
                model="gpt-2l", gpus=4, stage_counts=(1, 2),
                iterations=3,
            )
            first = daemon.submit(request, timeout=120)
            assert first.status == STATUS_SERVED
            assert first.plan["stages"]
            assert first.objective > 0
            second = daemon.submit(request, timeout=10)
            assert second.cached
            assert second.plan == first.plan
        finally:
            daemon.drain(timeout=10)

    def test_sub_second_deadline_returns_partial_or_valid(self):
        daemon = PlannerDaemon(workers=1, queue_limit=2).start()
        try:
            response = daemon.submit(
                PlanRequest(
                    model="gpt-4l",
                    gpus=4,
                    stage_counts=(1, 2, 4),
                    iterations=200,
                    deadline_seconds=0.5,
                ),
                timeout=60,
            )
            assert response.status in TERMINAL_STATUSES
            if response.ok:
                assert response.plan is not None
        finally:
            daemon.drain(timeout=10)


SERVE_TIMEOUT = 90


@pytest.mark.timeout(SERVE_TIMEOUT + 30)
class TestSigtermDrain:
    """Satellite 4: SIGTERM mid-search checkpoints and resumes."""

    REQUEST = dict(
        model="gpt-4l", gpus=4, stage_counts=[1, 2, 4], iterations=30
    )

    def spawn(self, state_dir, run_log):
        process = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "from repro.cli import serve_main; "
                "raise SystemExit(serve_main())",
                "--port", "0",
                "--workers", "1",
                "--state-dir", str(state_dir),
                "--run-log", str(run_log),
                "--quiet",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=str(Path(__file__).resolve().parent.parent),
        )
        line = process.stdout.readline()
        assert "listening on" in line, line
        port = int(line.rsplit(":", 1)[1])
        return process, port

    def post_plan(self, port, payload, timeout=60):
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/plan",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return json.loads(reply.read())

    def test_drain_checkpoints_and_resume_is_bit_exact(self, tmp_path):
        state_dir = tmp_path / "state"
        process, port = self.spawn(state_dir, tmp_path / "run1.jsonl")
        fingerprint = PlanRequest(**{
            **self.REQUEST, "stage_counts": (1, 2, 4),
        }).fingerprint()
        checkpoint = state_dir / f"{fingerprint}.ckpt.json"
        plan_file = state_dir / f"{fingerprint}.plan.json"
        responses = []

        def client():
            try:
                responses.append(self.post_plan(port, self.REQUEST))
            except (OSError, urllib.error.URLError):
                responses.append(None)  # cut off mid-drain: journaled

        thread = threading.Thread(target=client)
        thread.start()
        try:
            # Wait for the first stage count to land in the checkpoint
            # (or the whole search to finish), then pull the plug.
            deadline = time.monotonic() + SERVE_TIMEOUT
            while time.monotonic() < deadline:
                if plan_file.exists():
                    break
                if checkpoint.exists():
                    try:
                        done = json.loads(
                            checkpoint.read_text()
                        )["completed"]
                    except (ValueError, KeyError):
                        done = {}
                    if done:
                        break
                time.sleep(0.05)
            else:
                pytest.fail("no checkpoint progress before timeout")
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=SERVE_TIMEOUT)
        finally:
            if process.poll() is None:
                process.kill()
        thread.join(timeout=30)
        # Durable state survived the drain: either the finished plan,
        # or the checkpoint + journal of the interrupted search.
        interrupted = not plan_file.exists()
        if interrupted:
            assert checkpoint.exists()
            assert (
                state_dir / f"{fingerprint}.request.json"
            ).exists()

        # Restart: the journaled request is re-admitted and resumed
        # from the checkpoint; completed counts are not re-searched.
        process2, port2 = self.spawn(state_dir, tmp_path / "run2.jsonl")
        try:
            deadline = time.monotonic() + SERVE_TIMEOUT
            while time.monotonic() < deadline:
                if plan_file.exists():
                    break
                time.sleep(0.1)
            assert plan_file.exists(), "restart did not finish the plan"
            final = self.post_plan(port2, self.REQUEST)
            assert final["status"] == STATUS_SERVED
        finally:
            process2.send_signal(signal.SIGTERM)
            try:
                process2.wait(timeout=30)
            finally:
                if process2.poll() is None:
                    process2.kill()

        # Bit-exact: the drained-and-resumed plan equals the plan an
        # uninterrupted in-process search finds.
        from repro.service.planner import plan_request

        reference = plan_request(PlanRequest(**{
            **self.REQUEST, "stage_counts": (1, 2, 4),
        }))
        assert final["objective"] == reference.objective
        assert final["plan"] == reference.plan
